//! The memristive crossbar array with MAGIC stateful-logic execution.

use crate::bitgrid::BitGrid;
use crate::error::XbarError;
use crate::lineset::LineSet;
use crate::stats::{OpKind, Stats};
use crate::Result;

/// A memristor crossbar array supporting MAGIC NOR/NOT stateful logic.
///
/// Logical convention (matching the MAGIC papers): a memristor in the Low
/// Resistive State (LRS) stores logic `1`, the High Resistive State (HRS)
/// stores logic `0`. A MAGIC NOR gate drives an *output* memristor that was
/// previously initialized to LRS; the output switches to HRS iff any input
/// stores `1`.
///
/// Row-parallel gates (`exec_*_rows`) place inputs and output in named
/// *columns* and execute the gate simultaneously in every selected row.
/// Column-parallel gates are the transpose. Either way each issued operation
/// costs exactly one clock cycle.
///
/// # Strict mode
///
/// Real MAGIC execution requires output memristors to be initialized to LRS
/// immediately before the gate; forgetting this is the classic mapping bug.
/// In strict mode (the default) the simulator tracks an `initialized` flag
/// per cell and rejects gates whose outputs are stale with
/// [`XbarError::OutputNotInitialized`]. Conventional writes clear the flag;
/// [`Crossbar::exec_init_rows`]/[`Crossbar::exec_init_cols`] set it.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{Crossbar, LineSet};
///
/// # fn main() -> Result<(), pimecc_xbar::XbarError> {
/// let mut xb = Crossbar::new(2, 3);
/// xb.write_row(0, &[true, false, false]);
/// xb.write_row(1, &[false, false, false]);
/// xb.exec_init_rows(&[2], &LineSet::All)?;
/// xb.exec_nor_rows(&[0, 1], 2, &LineSet::All)?;
/// assert_eq!(xb.bit(0, 2), false); // NOR(1, 0)
/// assert_eq!(xb.bit(1, 2), true);  // NOR(0, 0)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    bits: BitGrid,
    /// Cells initialized to LRS and not yet consumed as a gate output.
    armed: BitGrid,
    strict: bool,
    stats: Stats,
}

impl Crossbar {
    /// Creates a crossbar of `rows × cols` memristors, all in HRS (logic 0),
    /// with strict MAGIC legality checking enabled.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Crossbar {
            bits: BitGrid::new(rows, cols),
            armed: BitGrid::new(rows, cols),
            strict: true,
            stats: Stats::new(),
        }
    }

    /// Number of rows (wordlines).
    pub fn rows(&self) -> usize {
        self.bits.rows()
    }

    /// Number of columns (bitlines).
    pub fn cols(&self) -> usize {
        self.bits.cols()
    }

    /// Enables or disables strict MAGIC legality checking.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Whether strict MAGIC legality checking is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Accumulated cycle/operation statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics counters to zero (state is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
    }

    /// Reads the logical value of cell `(r, c)` without consuming a cycle
    /// (an observability helper, not a sensed read — see
    /// [`Crossbar::exec_read_row`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    pub fn bit(&self, r: usize, c: usize) -> bool {
        self.bits.get(r, c)
    }

    /// Directly sets cell `(r, c)` without consuming a cycle. Used for test
    /// setup and fault injection; marks the cell un-armed.
    pub fn write_bit(&mut self, r: usize, c: usize, value: bool) {
        self.bits.set(r, c, value);
        self.armed.set(r, c, false);
    }

    /// Flips cell `(r, c)` in place — the soft-error primitive. Returns the
    /// new value. Does not consume a cycle and does not change arming, since
    /// a soft error is invisible to the controller.
    pub fn flip_bit(&mut self, r: usize, c: usize) -> bool {
        self.bits.flip(r, c)
    }

    /// Zero-cycle whole-row view.
    pub fn row(&self, r: usize) -> Vec<bool> {
        self.bits.row(r)
    }

    /// Zero-cycle whole-column view.
    pub fn col(&self, c: usize) -> Vec<bool> {
        self.bits.col(c)
    }

    /// Zero-cycle whole-row store (test setup / initial data load).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != cols`.
    pub fn write_row(&mut self, r: usize, bits: &[bool]) {
        self.bits.set_row(r, bits);
        for c in 0..self.cols() {
            self.armed.set(r, c, false);
        }
    }

    /// Zero-cycle whole-column store.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows`.
    pub fn write_col(&mut self, c: usize, bits: &[bool]) {
        self.bits.set_col(c, bits);
        for r in 0..self.rows() {
            self.armed.set(r, c, false);
        }
    }

    /// Borrow of the underlying bit matrix (for analyses like parity sweeps).
    pub fn grid(&self) -> &BitGrid {
        &self.bits
    }

    /// Bills one NOR-gate cycle driven by this array without touching its
    /// own cells — inter-array transfers (see [`crate::transfer`]) execute
    /// their gate on the destination but consume a cycle of the driving
    /// array's lines.
    pub(crate) fn charge_transfer_cycle(&mut self, cells: u64) {
        self.stats.record(OpKind::Nor, cells);
    }

    fn check_col(&self, c: usize) -> Result<()> {
        if c >= self.cols() {
            Err(XbarError::ColOutOfBounds {
                index: c,
                cols: self.cols(),
            })
        } else {
            Ok(())
        }
    }

    fn check_row(&self, r: usize) -> Result<()> {
        if r >= self.rows() {
            Err(XbarError::RowOutOfBounds {
                index: r,
                rows: self.rows(),
            })
        } else {
            Ok(())
        }
    }

    /// Executes a MAGIC NOR in parallel over the selected `rows`: for each
    /// selected row `r`, `cell(r, out_col) <- NOR of cell(r, c)` for every
    /// `c` in `in_cols`. One clock cycle.
    ///
    /// A single-element `in_cols` is a MAGIC NOT.
    ///
    /// # Errors
    ///
    /// * [`XbarError::NoInputs`] if `in_cols` is empty.
    /// * [`XbarError::ColOutOfBounds`]/[`XbarError::RowOutOfBounds`] on bad
    ///   indices.
    /// * [`XbarError::InputOutputOverlap`] if `out_col` is also an input.
    /// * [`XbarError::OutputNotInitialized`] in strict mode if any selected
    ///   output cell is not armed.
    pub fn exec_nor_rows(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
    ) -> Result<()> {
        if in_cols.is_empty() {
            return Err(XbarError::NoInputs);
        }
        for &c in in_cols {
            self.check_col(c)?;
            if c == out_col {
                return Err(XbarError::InputOutputOverlap { line: c });
            }
        }
        self.check_col(out_col)?;
        let idx = rows.indices(self.rows());
        for &r in &idx {
            self.check_row(r)?;
        }
        if self.strict {
            for &r in &idx {
                if !self.armed.get(r, out_col) {
                    return Err(XbarError::OutputNotInitialized {
                        row: r,
                        col: out_col,
                    });
                }
            }
        }
        for &r in &idx {
            let any = in_cols.iter().any(|&c| self.bits.get(r, c));
            // MAGIC: output armed at LRS(1); any '1' input discharges it.
            self.bits.set(r, out_col, !any);
            self.armed.set(r, out_col, false);
        }
        self.stats.record(OpKind::Nor, idx.len() as u64);
        Ok(())
    }

    /// Column-parallel transpose of [`Crossbar::exec_nor_rows`]: for each
    /// selected column `c`, `cell(out_row, c) <- NOR of cell(r, c)` for `r`
    /// in `in_rows`. One clock cycle.
    ///
    /// # Errors
    ///
    /// Mirrors [`Crossbar::exec_nor_rows`].
    pub fn exec_nor_cols(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
    ) -> Result<()> {
        if in_rows.is_empty() {
            return Err(XbarError::NoInputs);
        }
        for &r in in_rows {
            self.check_row(r)?;
            if r == out_row {
                return Err(XbarError::InputOutputOverlap { line: r });
            }
        }
        self.check_row(out_row)?;
        let idx = cols.indices(self.cols());
        for &c in &idx {
            self.check_col(c)?;
        }
        if self.strict {
            for &c in &idx {
                if !self.armed.get(out_row, c) {
                    return Err(XbarError::OutputNotInitialized {
                        row: out_row,
                        col: c,
                    });
                }
            }
        }
        for &c in &idx {
            let any = in_rows.iter().any(|&r| self.bits.get(r, c));
            self.bits.set(out_row, c, !any);
            self.armed.set(out_row, c, false);
        }
        self.stats.record(OpKind::Nor, idx.len() as u64);
        Ok(())
    }

    /// Initializes (`SET` to LRS, logic 1) the cells at the intersection of
    /// `cols` and the selected `rows`, arming them as MAGIC outputs. One
    /// clock cycle regardless of how many cells are set — initialization of
    /// many cells sharing line voltages is a single parallel operation.
    ///
    /// # Errors
    ///
    /// Out-of-bounds errors as in [`Crossbar::exec_nor_rows`].
    pub fn exec_init_rows(&mut self, cols: &[usize], rows: &LineSet) -> Result<()> {
        for &c in cols {
            self.check_col(c)?;
        }
        let idx = rows.indices(self.rows());
        for &r in &idx {
            self.check_row(r)?;
        }
        for &r in &idx {
            for &c in cols {
                self.bits.set(r, c, true);
                self.armed.set(r, c, true);
            }
        }
        self.stats
            .record(OpKind::Init, (idx.len() * cols.len()) as u64);
        Ok(())
    }

    /// Column-parallel transpose of [`Crossbar::exec_init_rows`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds errors as in [`Crossbar::exec_nor_cols`].
    pub fn exec_init_cols(&mut self, rows: &[usize], cols: &LineSet) -> Result<()> {
        for &r in rows {
            self.check_row(r)?;
        }
        let idx = cols.indices(self.cols());
        for &c in &idx {
            self.check_col(c)?;
        }
        for &c in &idx {
            for &r in rows {
                self.bits.set(r, c, true);
                self.armed.set(r, c, true);
            }
        }
        self.stats
            .record(OpKind::Init, (idx.len() * rows.len()) as u64);
        Ok(())
    }

    /// Sensed read of a whole row through the bitline sense amplifiers. One
    /// clock cycle.
    ///
    /// # Errors
    ///
    /// [`XbarError::RowOutOfBounds`] on a bad index.
    pub fn exec_read_row(&mut self, r: usize) -> Result<Vec<bool>> {
        self.check_row(r)?;
        self.stats.record(OpKind::Read, self.cols() as u64);
        Ok(self.bits.row(r))
    }

    /// Driven write of a whole row. One clock cycle. Written cells are
    /// un-armed.
    ///
    /// # Errors
    ///
    /// [`XbarError::RowOutOfBounds`] on a bad index;
    /// [`XbarError::ShapeMismatch`] if `bits.len() != cols`.
    pub fn exec_write_row(&mut self, r: usize, bits: &[bool]) -> Result<()> {
        self.check_row(r)?;
        if bits.len() != self.cols() {
            return Err(XbarError::ShapeMismatch {
                expected: self.cols(),
                actual: bits.len(),
            });
        }
        self.write_row(r, bits);
        self.stats.record(OpKind::Write, self.cols() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_xb(rows: usize, cols: usize) -> Crossbar {
        let mut xb = Crossbar::new(rows, cols);
        xb.set_strict(false);
        xb
    }

    #[test]
    fn nor_truth_table_single_row() {
        for (a, b, want) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            let mut xb = Crossbar::new(1, 3);
            xb.write_bit(0, 0, a);
            xb.write_bit(0, 1, b);
            xb.exec_init_rows(&[2], &LineSet::One(0)).unwrap();
            xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap();
            assert_eq!(xb.bit(0, 2), want, "NOR({a},{b})");
        }
    }

    #[test]
    fn not_is_single_input_nor() {
        let mut xb = Crossbar::new(2, 2);
        xb.write_bit(0, 0, true);
        xb.write_bit(1, 0, false);
        xb.exec_init_rows(&[1], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[0], 1, &LineSet::All).unwrap();
        assert!(!xb.bit(0, 1));
        assert!(xb.bit(1, 1));
    }

    #[test]
    fn row_parallelism_applies_same_gate_everywhere() {
        let n = 64;
        let mut xb = armed_xb(n, 3);
        for r in 0..n {
            xb.write_bit(r, 0, r % 2 == 0);
            xb.write_bit(r, 1, r % 3 == 0);
        }
        xb.exec_init_rows(&[2], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[0, 1], 2, &LineSet::All).unwrap();
        for r in 0..n {
            let want = !((r % 2 == 0) || (r % 3 == 0));
            assert_eq!(xb.bit(r, 2), want, "row {r}");
        }
        // The whole sweep costs exactly 2 cycles: init + gate.
        assert_eq!(xb.stats().cycles, 2);
    }

    #[test]
    fn column_parallel_nor() {
        let mut xb = Crossbar::new(3, 4);
        xb.write_row(0, &[true, false, true, false]);
        xb.write_row(1, &[false, false, true, true]);
        xb.exec_init_cols(&[2], &LineSet::All).unwrap();
        xb.exec_nor_cols(&[0, 1], 2, &LineSet::All).unwrap();
        assert_eq!(xb.row(2), vec![false, true, false, false]);
    }

    #[test]
    fn strict_mode_rejects_unarmed_output() {
        let mut xb = Crossbar::new(1, 3);
        let err = xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap_err();
        assert_eq!(err, XbarError::OutputNotInitialized { row: 0, col: 2 });
    }

    #[test]
    fn strict_mode_rejects_double_drive() {
        let mut xb = Crossbar::new(1, 4);
        xb.exec_init_rows(&[2], &LineSet::One(0)).unwrap();
        xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap();
        // Output no longer armed; a second gate into the same cell must fail.
        let err = xb.exec_nor_rows(&[0, 3], 2, &LineSet::One(0)).unwrap_err();
        assert!(matches!(err, XbarError::OutputNotInitialized { .. }));
    }

    #[test]
    fn conventional_write_disarms() {
        let mut xb = Crossbar::new(1, 2);
        xb.exec_init_rows(&[1], &LineSet::One(0)).unwrap();
        xb.exec_write_row(0, &[true, true]).unwrap();
        let err = xb.exec_nor_rows(&[0], 1, &LineSet::One(0)).unwrap_err();
        assert!(matches!(err, XbarError::OutputNotInitialized { .. }));
    }

    #[test]
    fn input_output_overlap_rejected() {
        let mut xb = armed_xb(1, 3);
        let err = xb.exec_nor_rows(&[0, 2], 2, &LineSet::One(0)).unwrap_err();
        assert_eq!(err, XbarError::InputOutputOverlap { line: 2 });
    }

    #[test]
    fn no_inputs_rejected() {
        let mut xb = armed_xb(1, 3);
        assert_eq!(
            xb.exec_nor_rows(&[], 2, &LineSet::One(0)).unwrap_err(),
            XbarError::NoInputs
        );
        assert_eq!(
            xb.exec_nor_cols(&[], 0, &LineSet::One(0)).unwrap_err(),
            XbarError::NoInputs
        );
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut xb = armed_xb(2, 2);
        assert!(matches!(
            xb.exec_nor_rows(&[0], 5, &LineSet::One(0)),
            Err(XbarError::ColOutOfBounds { index: 5, cols: 2 })
        ));
        assert!(matches!(
            xb.exec_nor_rows(&[0], 1, &LineSet::One(7)),
            Err(XbarError::RowOutOfBounds { index: 7, rows: 2 })
        ));
        assert!(matches!(
            xb.exec_read_row(9),
            Err(XbarError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn read_and_write_rows_cost_cycles() {
        let mut xb = Crossbar::new(2, 3);
        xb.exec_write_row(0, &[true, false, true]).unwrap();
        let row = xb.exec_read_row(0).unwrap();
        assert_eq!(row, vec![true, false, true]);
        assert_eq!(xb.stats().read_cycles, 1);
        assert_eq!(xb.stats().write_cycles, 1);
        assert_eq!(xb.stats().cycles, 2);
    }

    #[test]
    fn write_row_shape_mismatch() {
        let mut xb = Crossbar::new(1, 3);
        assert!(matches!(
            xb.exec_write_row(0, &[true]),
            Err(XbarError::ShapeMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn flip_bit_models_soft_error_invisibly() {
        let mut xb = Crossbar::new(1, 2);
        xb.exec_init_rows(&[1], &LineSet::One(0)).unwrap();
        let cycles_before = xb.stats().cycles;
        xb.flip_bit(0, 1);
        assert_eq!(xb.stats().cycles, cycles_before, "faults are free");
        // The cell stays armed: the controller cannot see the fault, so a
        // pending gate will still fire (now with a corrupted initial state).
        xb.exec_nor_rows(&[0], 1, &LineSet::One(0)).unwrap();
    }

    #[test]
    fn init_cols_arms_cells() {
        let mut xb = Crossbar::new(3, 3);
        xb.write_row(0, &[true, false, false]);
        xb.exec_init_cols(&[1], &LineSet::All).unwrap();
        xb.exec_nor_cols(&[0], 1, &LineSet::All).unwrap();
        assert_eq!(xb.row(1), vec![false, true, true]);
    }

    #[test]
    fn explicit_lineset_touches_only_selected_rows() {
        let mut xb = Crossbar::new(4, 2);
        xb.exec_init_rows(&[1], &LineSet::Explicit(vec![1, 3]))
            .unwrap();
        xb.exec_nor_rows(&[0], 1, &LineSet::Explicit(vec![1, 3]))
            .unwrap();
        // Rows 0 and 2 untouched (still 0), rows 1 and 3 got NOT(0) = 1.
        assert!(!xb.bit(0, 1));
        assert!(xb.bit(1, 1));
        assert!(!xb.bit(2, 1));
        assert!(xb.bit(3, 1));
    }
}
