//! The memristive crossbar array with MAGIC stateful-logic execution.

use crate::bitgrid::BitGrid;
use crate::error::XbarError;
use crate::lineset::{LineMask, LineSet};
use crate::stats::{OpKind, Stats};
use crate::Result;

/// Which simulation kernel executes the crossbar's parallel operations.
///
/// Both engines are *bit-identical*: same cell states, same arming, same
/// [`Stats`]. The word-parallel engine operates on packed 64-bit words
/// (masked row-word stores, gathered column words, [`LineMask`] selections)
/// and is the default; the scalar reference retains the original
/// cell-at-a-time loops and exists so benchmarks, CI smoke tests and
/// differential property tests can measure and pin the word-parallel
/// kernels against it.
///
/// One caveat bounds the identity: *duplicated* entries — the same line
/// repeated in a [`LineSet::Explicit`], or the same cell repeated in an
/// init list — have always been documented as "allowed but pointless",
/// and the layers above (ECC maintenance) may observe mask-collapsed
/// semantics from the word engine where the scalar reference applies the
/// duplicate twice. Every real caller passes distinct entries; keep it
/// that way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Whole-word execution (the fast path).
    #[default]
    WordParallel,
    /// The retained cell-at-a-time loops (the differential baseline).
    ScalarReference,
}

/// One step of a parallel MAGIC step sequence, as consumed by the fused
/// executor [`Crossbar::exec_steps_rows`]: an initialization of a set of
/// columns, or a NOR gate from input columns into an output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelStep {
    /// `SET` the listed columns to LRS and arm them.
    Init(Vec<usize>),
    /// MAGIC NOR of the input columns into the output column.
    Nor(Vec<usize>, usize),
}

/// A step compiled for the fused per-row pass: word/shift addressing
/// resolved, init masks packed.
#[derive(Clone)]
enum FusedOp {
    /// OR the mask words (range into the mask arena) into the row.
    Init { arena: std::ops::Range<usize> },
    /// Single-input NOR (MAGIC NOT).
    Not {
        w: usize,
        s: u32,
        ow: usize,
        osh: u32,
    },
    /// Two-input NOR.
    Nor2 {
        w1: usize,
        s1: u32,
        w2: usize,
        s2: u32,
        ow: usize,
        osh: u32,
    },
    /// General NOR (inputs as a range into the input arena).
    NorN {
        arena: std::ops::Range<usize>,
        ow: usize,
        osh: u32,
    },
}

/// A memristor crossbar array supporting MAGIC NOR/NOT stateful logic.
///
/// Logical convention (matching the MAGIC papers): a memristor in the Low
/// Resistive State (LRS) stores logic `1`, the High Resistive State (HRS)
/// stores logic `0`. A MAGIC NOR gate drives an *output* memristor that was
/// previously initialized to LRS; the output switches to HRS iff any input
/// stores `1`.
///
/// Row-parallel gates (`exec_*_rows`) place inputs and output in named
/// *columns* and execute the gate simultaneously in every selected row.
/// Column-parallel gates are the transpose. Either way each issued operation
/// costs exactly one clock cycle.
///
/// Simulation is word-parallel by default: a column-parallel NOR is three
/// word-wise sweeps (`OR` the input rows, negate under the selection mask,
/// masked-store into the output row), and a row-parallel NOR gathers its
/// input columns into packed words before one masked column scatter. The
/// original per-cell loops remain available as
/// [`SimEngine::ScalarReference`] (see [`Crossbar::set_engine`]) for
/// differential testing and speedup measurement.
///
/// # Strict mode
///
/// Real MAGIC execution requires output memristors to be initialized to LRS
/// immediately before the gate; forgetting this is the classic mapping bug.
/// In strict mode (the default) the simulator tracks an `initialized` flag
/// per cell and rejects gates whose outputs are stale with
/// [`XbarError::OutputNotInitialized`]. Conventional writes clear the flag;
/// [`Crossbar::exec_init_rows`]/[`Crossbar::exec_init_cols`] set it. The
/// flag plane is maintained with the same masked word stores as the data
/// plane, and strict-mode validation is a word-wise `mask & !armed` scan.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{Crossbar, LineSet};
///
/// # fn main() -> Result<(), pimecc_xbar::XbarError> {
/// let mut xb = Crossbar::new(2, 3);
/// xb.write_row(0, &[true, false, false]);
/// xb.write_row(1, &[false, false, false]);
/// xb.exec_init_rows(&[2], &LineSet::All)?;
/// xb.exec_nor_rows(&[0, 1], 2, &LineSet::All)?;
/// assert_eq!(xb.bit(0, 2), false); // NOR(1, 0)
/// assert_eq!(xb.bit(1, 2), true);  // NOR(0, 0)
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Crossbar {
    bits: BitGrid,
    /// Cells initialized to LRS and not yet consumed as a gate output.
    armed: BitGrid,
    strict: bool,
    engine: SimEngine,
    stats: Stats,
    /// Reusable line-selection mask (word-parallel path).
    mask_buf: LineMask,
    /// Reusable word accumulator (ORed inputs / negated outputs).
    acc_buf: Vec<u64>,
    /// Indices of the non-zero words of `acc_buf` (touched-word list).
    widx_buf: Vec<usize>,
    /// Reusable change-mask buffer for the non-reporting NOR wrappers.
    chg_buf: Vec<u64>,
}

impl Crossbar {
    /// Creates a crossbar of `rows × cols` memristors, all in HRS (logic 0),
    /// with strict MAGIC legality checking enabled.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        Crossbar {
            bits: BitGrid::new(rows, cols),
            armed: BitGrid::new(rows, cols),
            strict: true,
            engine: SimEngine::default(),
            stats: Stats::new(),
            mask_buf: LineMask::new(rows.max(cols)),
            acc_buf: Vec::new(),
            widx_buf: Vec::new(),
            chg_buf: Vec::new(),
        }
    }

    /// Number of rows (wordlines).
    pub fn rows(&self) -> usize {
        self.bits.rows()
    }

    /// Number of columns (bitlines).
    pub fn cols(&self) -> usize {
        self.bits.cols()
    }

    /// Enables or disables strict MAGIC legality checking.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Whether strict MAGIC legality checking is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Selects the simulation engine (default:
    /// [`SimEngine::WordParallel`]). Both engines produce identical cell
    /// states, arming and statistics.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.engine = engine;
    }

    /// The simulation engine in force.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// Accumulated cycle/operation statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics counters to zero (state is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
    }

    /// Reads the logical value of cell `(r, c)` without consuming a cycle
    /// (an observability helper, not a sensed read — see
    /// [`Crossbar::exec_read_row`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    pub fn bit(&self, r: usize, c: usize) -> bool {
        self.bits.get(r, c)
    }

    /// Directly sets cell `(r, c)` without consuming a cycle. Used for test
    /// setup and fault injection; marks the cell un-armed.
    pub fn write_bit(&mut self, r: usize, c: usize, value: bool) {
        self.bits.set(r, c, value);
        self.armed.set(r, c, false);
    }

    /// Flips cell `(r, c)` in place — the soft-error primitive. Returns the
    /// new value. Does not consume a cycle and does not change arming, since
    /// a soft error is invisible to the controller.
    pub fn flip_bit(&mut self, r: usize, c: usize) -> bool {
        self.bits.flip(r, c)
    }

    /// Sets cell `(r, c)` without consuming a cycle and without changing
    /// arming — the permanent-fault primitive. Like a soft error, physical
    /// wear is invisible to the controller's gate protocol; only the stored
    /// value differs from what was driven.
    pub fn force_bit(&mut self, r: usize, c: usize, value: bool) {
        self.bits.set(r, c, value);
    }

    /// Zero-cycle whole-row view.
    pub fn row(&self, r: usize) -> Vec<bool> {
        self.bits.row(r)
    }

    /// Zero-cycle whole-column view.
    pub fn col(&self, c: usize) -> Vec<bool> {
        self.bits.col(c)
    }

    /// Zero-cycle whole-row store (test setup / initial data load).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != cols`.
    pub fn write_row(&mut self, r: usize, bits: &[bool]) {
        self.bits.set_row(r, bits);
        self.armed.clear_row(r);
    }

    /// Zero-cycle whole-column store.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows`.
    pub fn write_col(&mut self, c: usize, bits: &[bool]) {
        self.bits.set_col(c, bits);
        self.armed.clear_col(c);
    }

    /// Borrow of the underlying bit matrix (for analyses like parity sweeps
    /// and the protected memory's word-diff ECC maintenance).
    pub fn grid(&self) -> &BitGrid {
        &self.bits
    }

    /// Zero-cycle masked word-store into row `r`: bits selected by `mask`
    /// take the corresponding bits of `values`, other cells keep their
    /// state; every written cell is un-armed. The word form of a partial
    /// [`Crossbar::write_row`] (sparse driven loads).
    pub fn write_row_words_masked(&mut self, r: usize, values: &[u64], mask: &[u64]) {
        self.bits.set_row_words_masked(r, values, mask);
        self.armed.clear_row_words_masked(r, mask);
    }

    /// Transpose of [`Crossbar::write_row_words_masked`]: a zero-cycle
    /// masked store into column `c`, with `values`/`rows_mask` packed one
    /// bit per row.
    pub fn write_col_words_masked(&mut self, c: usize, values: &[u64], rows_mask: &[u64]) {
        self.bits.col_word_scatter(c, values, rows_mask);
        self.armed.clear_col_masked(c, rows_mask);
    }

    /// Bills one NOR-gate cycle driven by this array without touching its
    /// own cells — inter-array transfers (see [`crate::transfer`]) execute
    /// their gate on the destination but consume a cycle of the driving
    /// array's lines.
    pub(crate) fn charge_transfer_cycle(&mut self, cells: u64) {
        self.stats.record(OpKind::Nor, cells);
    }

    fn check_col(&self, c: usize) -> Result<()> {
        if c >= self.cols() {
            Err(XbarError::ColOutOfBounds {
                index: c,
                cols: self.cols(),
            })
        } else {
            Ok(())
        }
    }

    fn check_row(&self, r: usize) -> Result<()> {
        if r >= self.rows() {
            Err(XbarError::RowOutOfBounds {
                index: r,
                rows: self.rows(),
            })
        } else {
            Ok(())
        }
    }

    /// Bounds-validates a row selection without materializing it.
    fn check_row_set(&self, rows: &LineSet) -> Result<()> {
        match rows.max_index(self.rows()) {
            Some(max) if max >= self.rows() => Err(XbarError::RowOutOfBounds {
                index: max,
                rows: self.rows(),
            }),
            _ => Ok(()),
        }
    }

    /// Bounds-validates a column selection without materializing it.
    fn check_col_set(&self, cols: &LineSet) -> Result<()> {
        match cols.max_index(self.cols()) {
            Some(max) if max >= self.cols() => Err(XbarError::ColOutOfBounds {
                index: max,
                cols: self.cols(),
            }),
            _ => Ok(()),
        }
    }

    /// Executes a MAGIC NOR in parallel over the selected `rows`: for each
    /// selected row `r`, `cell(r, out_col) <- NOR of cell(r, c)` for every
    /// `c` in `in_cols`. One clock cycle.
    ///
    /// A single-element `in_cols` is a MAGIC NOT.
    ///
    /// # Errors
    ///
    /// * [`XbarError::NoInputs`] if `in_cols` is empty.
    /// * [`XbarError::ColOutOfBounds`]/[`XbarError::RowOutOfBounds`] on bad
    ///   indices.
    /// * [`XbarError::InputOutputOverlap`] if `out_col` is also an input.
    /// * [`XbarError::OutputNotInitialized`] in strict mode if any selected
    ///   output cell is not armed.
    pub fn exec_nor_rows(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
    ) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.acc_buf);
        let result = self.exec_nor_rows_changed(in_cols, out_col, rows, &mut scratch);
        self.acc_buf = scratch;
        result
    }

    /// [`Crossbar::exec_nor_rows`] that additionally reports which selected
    /// rows' output bit actually changed, packed one bit per row into
    /// `changed` (resized to [`BitGrid::col_words`]) — the feed of
    /// word-diff ECC maintenance, produced in the same pass as the gate so
    /// the output column is never re-gathered.
    ///
    /// # Errors
    ///
    /// As [`Crossbar::exec_nor_rows`]; `changed` is zeroed on error paths
    /// reached after validation.
    pub fn exec_nor_rows_changed(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
        changed: &mut Vec<u64>,
    ) -> Result<()> {
        if in_cols.is_empty() {
            return Err(XbarError::NoInputs);
        }
        for &c in in_cols {
            self.check_col(c)?;
            if c == out_col {
                return Err(XbarError::InputOutputOverlap { line: c });
            }
        }
        self.check_col(out_col)?;
        changed.clear();
        changed.resize(self.bits.col_words(), 0);
        match self.engine {
            SimEngine::ScalarReference => self.nor_rows_scalar(in_cols, out_col, rows, changed)?,
            SimEngine::WordParallel => self.nor_rows_word(in_cols, out_col, rows, changed)?,
        }
        self.stats.record(OpKind::Nor, rows.len(self.rows()) as u64);
        Ok(())
    }

    fn nor_rows_scalar(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
        changed: &mut [u64],
    ) -> Result<()> {
        let n = self.rows();
        for r in rows.iter(n) {
            self.check_row(r)?;
        }
        if self.strict {
            for r in rows.iter(n) {
                if !self.armed.get(r, out_col) {
                    return Err(XbarError::OutputNotInitialized {
                        row: r,
                        col: out_col,
                    });
                }
            }
        }
        for r in rows.iter(n) {
            let any = in_cols.iter().any(|&c| self.bits.get(r, c));
            // MAGIC: output armed at LRS(1); any '1' input discharges it.
            if self.bits.get(r, out_col) == any {
                changed[r / 64] |= 1u64 << (r % 64);
            }
            self.bits.set(r, out_col, !any);
            self.armed.set(r, out_col, false);
        }
        Ok(())
    }

    fn nor_rows_word(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
        changed: &mut [u64],
    ) -> Result<()> {
        self.check_row_set(rows)?;
        let n = self.rows();
        let stride = self.bits.stride();
        let (ow, osh) = (out_col / 64, (out_col % 64) as u32);
        let obit = 1u64 << osh;
        // Contiguous selections (`All`/`One`/`Range`) are duplicate-free,
        // so the armed check folds into the write pass: on a violation the
        // rows already driven are rolled back from their change bits.
        // `Explicit` may repeat a line (whose armed flag this very gate
        // clears), so it keeps the validate-then-write two-pass form.
        let dup_free = !matches!(rows, LineSet::Explicit(_));
        if self.strict && !dup_free {
            let armed = self.armed.words_raw();
            for r in rows.iter(n) {
                if armed[r * stride + ow] & obit == 0 {
                    return Err(XbarError::OutputNotInitialized {
                        row: r,
                        col: out_col,
                    });
                }
            }
        }
        let check_inline = self.strict && dup_free;
        // One fused strided pass per selected row: NOR the input bits,
        // record the change bit, store the output, clear its armed flag.
        // MAGIC NOT and 2-input NOR (the overwhelming majority of gates)
        // get pre-resolved word/shift addressing.
        enum Ins {
            One(usize, u32),
            Two(usize, u32, usize, u32),
            Many,
        }
        let ins = match *in_cols {
            [c] => Ins::One(c / 64, (c % 64) as u32),
            [a, b] => Ins::Two(a / 64, (a % 64) as u32, b / 64, (b % 64) as u32),
            _ => Ins::Many,
        };
        let bits = self.bits.words_raw_mut();
        let armed = self.armed.words_raw_mut();
        // Contiguous selections run over per-row chunks whose length the
        // optimizer knows, with the word offsets asserted in range once —
        // the per-row bound checks vanish.
        let span = match rows {
            LineSet::All => Some(0..n),
            LineSet::One(i) => Some(*i..*i + 1),
            LineSet::Range(r) => Some(r.clone()),
            LineSet::Explicit(_) => None,
        };
        if let Some(span) = span {
            if span.is_empty() {
                return Ok(());
            }
            assert!(ow < stride, "output word in range");
            for &c in in_cols {
                assert!(c / 64 < stride, "input word in range");
            }
            let row_range = span.start * stride..span.end * stride;
            let mut failed = None;
            for (i, (row, arow)) in bits[row_range.clone()]
                .chunks_exact_mut(stride)
                .zip(armed[row_range].chunks_exact_mut(stride))
                .enumerate()
            {
                let r = span.start + i;
                let armed_val = arow[ow];
                if check_inline && armed_val & obit == 0 {
                    failed = Some(r);
                    break;
                }
                arow[ow] = armed_val & !obit;
                let any = match ins {
                    Ins::One(w, s) => row[w] >> s,
                    Ins::Two(w1, s1, w2, s2) => (row[w1] >> s1) | (row[w2] >> s2),
                    Ins::Many => {
                        let mut acc = 0u64;
                        for &c in in_cols {
                            acc |= row[c / 64] >> (c % 64);
                        }
                        acc
                    }
                };
                let out = (!any & 1) << osh;
                let word = &mut row[ow];
                changed[r >> 6] |= (((*word ^ out) >> osh) & 1) << (r & 63);
                *word = (*word & !obit) | out;
            }
            if let Some(r) = failed {
                // Roll the prior rows back to their pre-gate state; the
                // change bits identify the flipped outputs and every
                // rolled-back output was armed (it passed the check).
                for rb in span.start..r {
                    let b = rb * stride;
                    if changed[rb >> 6] >> (rb & 63) & 1 == 1 {
                        bits[b + ow] ^= obit;
                        changed[rb >> 6] &= !(1u64 << (rb & 63));
                    }
                    armed[b + ow] |= obit;
                }
                return Err(XbarError::OutputNotInitialized {
                    row: r,
                    col: out_col,
                });
            }
            return Ok(());
        }
        // Explicit selections were strict-validated in the two-pass form
        // above (`check_inline` is false here), so this loop only writes.
        for r in rows.iter(n) {
            let base = r * stride;
            armed[base + ow] &= !obit;
            let any = match ins {
                Ins::One(w, s) => bits[base + w] >> s,
                Ins::Two(w1, s1, w2, s2) => (bits[base + w1] >> s1) | (bits[base + w2] >> s2),
                Ins::Many => {
                    let mut acc = 0u64;
                    for &c in in_cols {
                        acc |= bits[base + c / 64] >> (c % 64);
                    }
                    acc
                }
            };
            let out = (!any & 1) << osh;
            let word = &mut bits[base + ow];
            changed[r >> 6] |= (((*word ^ out) >> osh) & 1) << (r & 63);
            *word = (*word & !obit) | out;
        }
        Ok(())
    }

    /// Column-parallel transpose of [`Crossbar::exec_nor_rows`]: for each
    /// selected column `c`, `cell(out_row, c) <- NOR of cell(r, c)` for `r`
    /// in `in_rows`. One clock cycle.
    ///
    /// # Errors
    ///
    /// Mirrors [`Crossbar::exec_nor_rows`].
    pub fn exec_nor_cols(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
    ) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.chg_buf);
        let result = self.exec_nor_cols_changed(in_rows, out_row, cols, &mut scratch);
        self.chg_buf = scratch;
        result
    }

    /// [`Crossbar::exec_nor_cols`] that additionally reports which selected
    /// columns' output bit actually changed, packed in row-word layout into
    /// `changed` (resized to [`BitGrid::stride`]) — the transpose of
    /// [`Crossbar::exec_nor_rows_changed`].
    ///
    /// # Errors
    ///
    /// As [`Crossbar::exec_nor_cols`]; `changed` is zeroed on error paths
    /// reached after validation.
    pub fn exec_nor_cols_changed(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
        changed: &mut Vec<u64>,
    ) -> Result<()> {
        if in_rows.is_empty() {
            return Err(XbarError::NoInputs);
        }
        for &r in in_rows {
            self.check_row(r)?;
            if r == out_row {
                return Err(XbarError::InputOutputOverlap { line: r });
            }
        }
        self.check_row(out_row)?;
        changed.clear();
        changed.resize(self.bits.stride(), 0);
        match self.engine {
            SimEngine::ScalarReference => self.nor_cols_scalar(in_rows, out_row, cols, changed)?,
            SimEngine::WordParallel => self.nor_cols_word(in_rows, out_row, cols, changed)?,
        }
        self.stats.record(OpKind::Nor, cols.len(self.cols()) as u64);
        Ok(())
    }

    fn nor_cols_scalar(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
        changed: &mut [u64],
    ) -> Result<()> {
        let n = self.cols();
        for c in cols.iter(n) {
            self.check_col(c)?;
        }
        if self.strict {
            for c in cols.iter(n) {
                if !self.armed.get(out_row, c) {
                    return Err(XbarError::OutputNotInitialized {
                        row: out_row,
                        col: c,
                    });
                }
            }
        }
        for c in cols.iter(n) {
            let any = in_rows.iter().any(|&r| self.bits.get(r, c));
            if self.bits.get(out_row, c) == any {
                changed[c / 64] |= 1u64 << (c % 64);
            }
            self.bits.set(out_row, c, !any);
            self.armed.set(out_row, c, false);
        }
        Ok(())
    }

    fn nor_cols_word(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
        changed: &mut [u64],
    ) -> Result<()> {
        self.check_col_set(cols)?;
        cols.fill_mask(self.cols(), &mut self.mask_buf);
        let stride = self.bits.stride();
        self.acc_buf.clear();
        self.acc_buf.resize(stride, 0);
        self.bits.word_or_rows_into(in_rows, &mut self.acc_buf);
        if self.strict {
            let armed = self.armed.row_words(out_row);
            for (wi, (&mw, &aw)) in self.mask_buf.words().iter().zip(armed).enumerate() {
                let unarmed = mw & !aw;
                if unarmed != 0 {
                    return Err(XbarError::OutputNotInitialized {
                        row: out_row,
                        col: wi * 64 + unarmed.trailing_zeros() as usize,
                    });
                }
            }
        }
        // Fused masked store: out = !(OR of input rows) under the column
        // mask, change words recorded as the outputs land.
        let mask = self.mask_buf.words();
        let bits = self.bits.words_raw_mut();
        let base = out_row * stride;
        for (wi, &mw) in mask.iter().enumerate() {
            if mw == 0 {
                continue;
            }
            let new = !self.acc_buf[wi] & mw;
            let word = &mut bits[base + wi];
            changed[wi] = (*word ^ new) & mw;
            *word = (*word & !mw) | new;
        }
        self.armed.clear_row_words_masked(out_row, mask);
        Ok(())
    }

    /// Initializes (`SET` to LRS, logic 1) the cells at the intersection of
    /// `cols` and the selected `rows`, arming them as MAGIC outputs. One
    /// clock cycle regardless of how many cells are set — initialization of
    /// many cells sharing line voltages is a single parallel operation.
    ///
    /// # Errors
    ///
    /// Out-of-bounds errors as in [`Crossbar::exec_nor_rows`].
    pub fn exec_init_rows(&mut self, cols: &[usize], rows: &LineSet) -> Result<()> {
        for &c in cols {
            self.check_col(c)?;
        }
        match self.engine {
            SimEngine::ScalarReference => {
                let n = self.rows();
                for r in rows.iter(n) {
                    self.check_row(r)?;
                }
                for r in rows.iter(n) {
                    for &c in cols {
                        self.bits.set(r, c, true);
                        self.armed.set(r, c, true);
                    }
                }
            }
            SimEngine::WordParallel => {
                self.check_row_set(rows)?;
                let n = self.rows();
                let stride = self.bits.stride();
                self.acc_buf.clear();
                self.acc_buf.resize(stride, 0);
                self.widx_buf.clear();
                for &c in cols {
                    self.acc_buf[c / 64] |= 1u64 << (c % 64);
                }
                for wi in 0..stride {
                    if self.acc_buf[wi] != 0 {
                        self.widx_buf.push(wi);
                    }
                }
                // One fused pass per selected row, touching only the words
                // the initialized columns land in (both planes: a MAGIC
                // init sets the cell to LRS *and* arms it).
                let bits = self.bits.words_raw_mut();
                let armed = self.armed.words_raw_mut();
                for r in rows.iter(n) {
                    let base = r * stride;
                    for &wi in &self.widx_buf {
                        let v = self.acc_buf[wi];
                        bits[base + wi] |= v;
                        armed[base + wi] |= v;
                    }
                }
            }
        }
        self.stats
            .record(OpKind::Init, (rows.len(self.rows()) * cols.len()) as u64);
        Ok(())
    }

    /// Column-parallel transpose of [`Crossbar::exec_init_rows`].
    ///
    /// # Errors
    ///
    /// Out-of-bounds errors as in [`Crossbar::exec_nor_cols`].
    pub fn exec_init_cols(&mut self, rows: &[usize], cols: &LineSet) -> Result<()> {
        for &r in rows {
            self.check_row(r)?;
        }
        match self.engine {
            SimEngine::ScalarReference => {
                let n = self.cols();
                for c in cols.iter(n) {
                    self.check_col(c)?;
                }
                for c in cols.iter(n) {
                    for &r in rows {
                        self.bits.set(r, c, true);
                        self.armed.set(r, c, true);
                    }
                }
            }
            SimEngine::WordParallel => {
                self.check_col_set(cols)?;
                cols.fill_mask(self.cols(), &mut self.mask_buf);
                for &r in rows {
                    self.bits
                        .set_row_words_masked(r, self.mask_buf.words(), self.mask_buf.words());
                    self.armed.set_row_words_masked(
                        r,
                        self.mask_buf.words(),
                        self.mask_buf.words(),
                    );
                }
            }
        }
        self.stats
            .record(OpKind::Init, (cols.len(self.cols()) * rows.len()) as u64);
        Ok(())
    }

    /// Sensed read of a whole row through the bitline sense amplifiers. One
    /// clock cycle.
    ///
    /// # Errors
    ///
    /// [`XbarError::RowOutOfBounds`] on a bad index.
    pub fn exec_read_row(&mut self, r: usize) -> Result<Vec<bool>> {
        self.check_row(r)?;
        self.stats.record(OpKind::Read, self.cols() as u64);
        Ok(self.bits.row(r))
    }

    /// Driven write of a whole row. One clock cycle. Written cells are
    /// un-armed.
    ///
    /// # Errors
    ///
    /// [`XbarError::RowOutOfBounds`] on a bad index;
    /// [`XbarError::ShapeMismatch`] if `bits.len() != cols`.
    pub fn exec_write_row(&mut self, r: usize, bits: &[bool]) -> Result<()> {
        self.check_row(r)?;
        if bits.len() != self.cols() {
            return Err(XbarError::ShapeMismatch {
                expected: self.cols(),
                actual: bits.len(),
            });
        }
        self.write_row(r, bits);
        self.stats.record(OpKind::Write, self.cols() as u64);
        Ok(())
    }

    /// Fused execution of a whole *self-arming* step sequence over a
    /// contiguous row range: each row's words are pulled into locals once,
    /// every step of the sequence runs on them as plain ALU operations,
    /// and the row is stored back — the per-step sweeps over the matrix
    /// collapse into one. Cycle statistics are recorded per step exactly
    /// as the step-at-a-time API would.
    ///
    /// Returns `Ok(false)` — leaving the crossbar untouched — when the
    /// sequence is not eligible for fusion, so the caller can replay it
    /// through the per-step API (which also reproduces the per-step error
    /// semantics). Eligibility requires the word-parallel engine, in-bounds
    /// rows/columns, non-empty inputs, no in/out overlap, a stride the
    /// local buffer covers, and — under strict mode — a *self-arming*
    /// sequence: every NOR output armed by an earlier `Init` of the same
    /// sequence (the shape every mapped program has), which makes per-row
    /// legality independent of prior crossbar state.
    ///
    /// # Errors
    ///
    /// Currently infallible (ineligibility is `Ok(false)`); the `Result`
    /// mirrors the other executors.
    pub fn exec_steps_rows(
        &mut self,
        steps: &[ParallelStep],
        rows: std::ops::Range<usize>,
    ) -> Result<bool> {
        if rows.start >= rows.end || rows.end > self.rows() {
            return Ok(false);
        }
        match self.compile_steps_rows(steps) {
            None => Ok(false),
            Some(plan) => {
                self.exec_fused_rows(&plan, rows);
                Ok(true)
            }
        }
    }

    /// Compiles a step sequence for the fused row-parallel executor:
    /// analysis (bounds, overlap, self-arming legality under strict mode)
    /// plus addressing resolution, done **once** — the returned
    /// [`FusedRowsPlan`] replays over any row range via
    /// [`Crossbar::exec_fused_rows`] with zero per-call setup. Returns
    /// `None` when the sequence or this crossbar's configuration is
    /// ineligible (scalar engine, oversized stride, bad bounds, in/out
    /// overlap, or a non-self-arming sequence under strict mode).
    pub fn compile_steps_rows(&self, steps: &[ParallelStep]) -> Option<FusedRowsPlan> {
        let stride = self.bits.stride();
        if !matches!(self.engine, SimEngine::WordParallel)
            || stride > MAX_FUSED_STRIDE
            || steps.is_empty()
        {
            return None;
        }
        // Analysis pass: bounds, overlap, self-arming legality, and the
        // final armed state (program-armed minus consumed, over the
        // touched columns) — identical for every selected row.
        let cols = self.cols();
        let mut prog_armed = vec![0u64; stride];
        let mut touched = vec![0u64; stride];
        let mut init_steps = 0u64;
        let mut init_cells = 0u64;
        let mut nor_steps = 0u64;
        for step in steps {
            match step {
                ParallelStep::Init(cells) => {
                    if cells.is_empty() {
                        return None;
                    }
                    for &c in cells {
                        if c >= cols {
                            return None;
                        }
                        prog_armed[c / 64] |= 1u64 << (c % 64);
                        touched[c / 64] |= 1u64 << (c % 64);
                    }
                    init_steps += 1;
                    init_cells += cells.len() as u64;
                }
                ParallelStep::Nor(ins, out) => {
                    let out = *out;
                    if ins.is_empty() || out >= cols {
                        return None;
                    }
                    for &c in ins {
                        if c >= cols || c == out {
                            return None;
                        }
                    }
                    let (ow, obit) = (out / 64, 1u64 << (out % 64));
                    if self.strict && prog_armed[ow] & obit == 0 {
                        return None;
                    }
                    prog_armed[ow] &= !obit;
                    touched[ow] |= obit;
                    nor_steps += 1;
                }
            }
        }
        // Compile the sequence: resolved addressing, packed init masks.
        let mut mask_arena: Vec<u64> = Vec::new();
        let mut input_arena: Vec<(usize, u32)> = Vec::new();
        let mut ops: Vec<FusedOp> = Vec::with_capacity(steps.len());
        let mut used = [false; MAX_FUSED_STRIDE];
        for step in steps {
            match step {
                ParallelStep::Init(cells) => {
                    let start = mask_arena.len();
                    mask_arena.resize(start + stride, 0);
                    for &c in cells {
                        mask_arena[start + c / 64] |= 1u64 << (c % 64);
                        used[c / 64] = true;
                    }
                    ops.push(FusedOp::Init {
                        arena: start..start + stride,
                    });
                }
                ParallelStep::Nor(ins, out) => {
                    for &c in ins {
                        used[c / 64] = true;
                    }
                    used[*out / 64] = true;
                    let (ow, osh) = (*out / 64, (*out % 64) as u32);
                    ops.push(match *ins.as_slice() {
                        [c] => FusedOp::Not {
                            w: c / 64,
                            s: (c % 64) as u32,
                            ow,
                            osh,
                        },
                        [a, b] => FusedOp::Nor2 {
                            w1: a / 64,
                            s1: (a % 64) as u32,
                            w2: b / 64,
                            s2: (b % 64) as u32,
                            ow,
                            osh,
                        },
                        _ => {
                            let start = input_arena.len();
                            input_arena.extend(ins.iter().map(|&c| (c / 64, (c % 64) as u32)));
                            FusedOp::NorN {
                                arena: start..input_arena.len(),
                                ow,
                                osh,
                            }
                        }
                    });
                }
            }
        }
        let mut used_words: Vec<u16> = Vec::new();
        let mut word_slot = [u16::MAX; MAX_FUSED_STRIDE];
        for (w, &u) in used.iter().enumerate().take(stride) {
            if u {
                word_slot[w] = used_words.len() as u16;
                used_words.push(w as u16);
            }
        }
        Some(FusedRowsPlan {
            cols,
            stride,
            strict: self.strict,
            prog_armed,
            touched,
            mask_arena,
            input_arena,
            ops,
            init_steps,
            init_cells,
            nor_steps,
            used_words,
            word_slot,
        })
    }

    /// Replays a compiled sequence over a contiguous row range — the
    /// execute-many half of [`Crossbar::compile_steps_rows`]. Bit- and
    /// stats-identical to [`Crossbar::exec_steps_rows`] on the same steps.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different configuration
    /// (columns, stride, strict mode, engine) or the range is out of
    /// bounds.
    pub fn exec_fused_rows(&mut self, plan: &FusedRowsPlan, rows: std::ops::Range<usize>) {
        self.check_fused_plan(plan.cols, plan.stride, plan.strict);
        assert!(
            rows.start <= rows.end && rows.end <= self.rows(),
            "fused row range out of bounds"
        );
        let lines = rows.len() as u64;
        let stride = plan.stride;
        let row_range = rows.start * stride..rows.end * stride;
        plan.run_on_rows(
            &mut self.bits.words_raw_mut()[row_range.clone()],
            &mut self.armed.words_raw_mut()[row_range],
        );
        self.record_fused(plan, lines);
    }

    /// Bills the per-step statistics of one fused replay over `lines`
    /// rows (or columns), exactly as the step-at-a-time API would — split
    /// out so parallel executors that drive [`FusedRowsPlan::run_on_rows`]
    /// on raw slices can account once, deterministically.
    pub fn record_fused(&mut self, plan: &FusedRowsPlan, lines: u64) {
        self.stats.record_bulk(
            plan.init_steps,
            lines * plan.init_cells,
            plan.nor_steps,
            lines,
        );
    }

    /// The two raw word planes (`bits`, `armed`), row-major with
    /// [`BitGrid::stride`] words per row — the escape hatch intra-shard
    /// worker teams use to run [`FusedRowsPlan::run_on_rows`] on disjoint
    /// row chunks via `split_at_mut`. Callers must preserve the planes'
    /// invariants; statistics are *not* recorded (see
    /// [`Crossbar::record_fused`]).
    #[doc(hidden)]
    pub fn planes_words_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        (self.bits.words_raw_mut(), self.armed.words_raw_mut())
    }

    fn check_fused_plan(&self, cols: usize, stride: usize, strict: bool) {
        assert!(
            matches!(self.engine, SimEngine::WordParallel),
            "fused plans require the word-parallel engine"
        );
        assert_eq!(cols, self.cols(), "fused plan compiled for other width");
        assert_eq!(stride, self.bits.stride(), "fused plan stride mismatch");
        assert_eq!(strict, self.strict, "fused plan strictness mismatch");
    }

    /// Compiles a step sequence for the fused *column-parallel* executor —
    /// the transpose of [`Crossbar::compile_steps_rows`]: step cell indices
    /// name **rows** (an init arms cells of listed rows across the selected
    /// columns; a NOR reads input rows and writes an output row), and
    /// [`Crossbar::exec_fused_cols`] replays the whole sequence over a
    /// contiguous column range in one pass. Ineligible sequences return
    /// `None` (same rules as the row plan, transposed).
    pub fn compile_steps_cols(&self, steps: &[ParallelStep]) -> Option<FusedColsPlan> {
        let stride = self.bits.stride();
        if !matches!(self.engine, SimEngine::WordParallel)
            || stride > MAX_FUSED_STRIDE
            || steps.is_empty()
        {
            return None;
        }
        let rows = self.rows();
        // Analysis, transposed: armed/touched are per *line* (row) flags.
        let mut armed_flag = vec![false; rows];
        let mut touched_flag = vec![false; rows];
        let mut init_steps = 0u64;
        let mut init_cells = 0u64;
        let mut nor_steps = 0u64;
        for step in steps {
            match step {
                ParallelStep::Init(cells) => {
                    if cells.is_empty() {
                        return None;
                    }
                    for &r in cells {
                        if r >= rows {
                            return None;
                        }
                        armed_flag[r] = true;
                        touched_flag[r] = true;
                    }
                    init_steps += 1;
                    init_cells += cells.len() as u64;
                }
                ParallelStep::Nor(ins, out) => {
                    let out = *out;
                    if ins.is_empty() || out >= rows {
                        return None;
                    }
                    for &r in ins {
                        if r >= rows || r == out {
                            return None;
                        }
                    }
                    if self.strict && !armed_flag[out] {
                        return None;
                    }
                    armed_flag[out] = false;
                    touched_flag[out] = true;
                    nor_steps += 1;
                }
            }
        }
        let mut line_arena: Vec<usize> = Vec::new();
        let mut ops: Vec<FusedColOp> = Vec::with_capacity(steps.len());
        for step in steps {
            match step {
                ParallelStep::Init(cells) => {
                    let start = line_arena.len();
                    line_arena.extend_from_slice(cells);
                    ops.push(FusedColOp::Init {
                        arena: start..line_arena.len(),
                    });
                }
                ParallelStep::Nor(ins, out) => {
                    let start = line_arena.len();
                    line_arena.extend_from_slice(ins);
                    ops.push(FusedColOp::Nor {
                        arena: start..line_arena.len(),
                        out: *out,
                    });
                }
            }
        }
        let touched_lines: Vec<(usize, bool)> = touched_flag
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t)
            .map(|(r, _)| (r, armed_flag[r]))
            .collect();
        Some(FusedColsPlan {
            rows,
            stride,
            strict: self.strict,
            line_arena,
            ops,
            touched_lines,
            init_steps,
            init_cells,
            nor_steps,
        })
    }

    /// Replays a compiled column-parallel sequence over a contiguous
    /// column range: every step becomes a handful of word operations on
    /// the touched rows, and the per-step sweeps over the matrix collapse
    /// into one — bit- and stats-identical to replaying the steps through
    /// [`Crossbar::exec_init_cols`] / [`Crossbar::exec_nor_cols`].
    ///
    /// # Panics
    ///
    /// Panics on a plan/configuration mismatch or an out-of-bounds range,
    /// as [`Crossbar::exec_fused_rows`].
    pub fn exec_fused_cols(&mut self, plan: &FusedColsPlan, cols: std::ops::Range<usize>) {
        self.check_fused_plan_cols(plan);
        assert!(
            cols.start <= cols.end && cols.end <= self.cols(),
            "fused column range out of bounds"
        );
        let lines = cols.len() as u64;
        let stride = plan.stride;
        let (w0, w1, mask) = col_range_mask(&cols);
        let bits = self.bits.words_raw_mut();
        let mut acc = [0u64; MAX_FUSED_STRIDE];
        for op in &plan.ops {
            match op {
                FusedColOp::Init { arena } => {
                    for &r in &plan.line_arena[arena.clone()] {
                        let base = r * stride;
                        for w in w0..=w1 {
                            bits[base + w] |= mask[w - w0];
                        }
                    }
                }
                FusedColOp::Nor { arena, out } => {
                    acc[..=w1 - w0].fill(0);
                    for &r in &plan.line_arena[arena.clone()] {
                        let base = r * stride;
                        for w in w0..=w1 {
                            acc[w - w0] |= bits[base + w];
                        }
                    }
                    let base = out * stride;
                    for w in w0..=w1 {
                        let m = mask[w - w0];
                        bits[base + w] = (bits[base + w] & !m) | (!acc[w - w0] & m);
                    }
                }
            }
        }
        // Armed plane: every touched line consumes the selection; lines
        // the program leaves armed re-arm it — word-wise, once.
        let armed = self.armed.words_raw_mut();
        for &(r, stays_armed) in &plan.touched_lines {
            let base = r * stride;
            for w in w0..=w1 {
                let m = mask[w - w0];
                let aw = &mut armed[base + w];
                *aw = if stays_armed { *aw | m } else { *aw & !m };
            }
        }
        self.stats.record_bulk(
            plan.init_steps,
            lines * plan.init_cells,
            plan.nor_steps,
            lines,
        );
    }

    fn check_fused_plan_cols(&self, plan: &FusedColsPlan) {
        assert!(
            matches!(self.engine, SimEngine::WordParallel),
            "fused plans require the word-parallel engine"
        );
        assert_eq!(
            plan.rows,
            self.rows(),
            "fused plan compiled for other height"
        );
        assert_eq!(
            plan.stride,
            self.bits.stride(),
            "fused plan stride mismatch"
        );
        assert_eq!(plan.strict, self.strict, "fused plan strictness mismatch");
    }
}

/// Word span and per-word masks of a contiguous column range: words
/// `w0..=w1` are touched, `mask[k]` selects the range's bits of word
/// `w0 + k`.
fn col_range_mask(cols: &std::ops::Range<usize>) -> (usize, usize, [u64; MAX_FUSED_STRIDE]) {
    debug_assert!(!cols.is_empty());
    let (w0, w1) = (cols.start / 64, (cols.end - 1) / 64);
    let mut mask = [u64::MAX; MAX_FUSED_STRIDE];
    mask[0] = u64::MAX << (cols.start % 64);
    let hi = u64::MAX >> (63 - (cols.end - 1) % 64);
    if w0 == w1 {
        mask[0] &= hi;
    } else {
        mask[w1 - w0] = hi;
    }
    (w0, w1, mask)
}

/// Upper stride bound of the fused executors' fixed-size local buffers
/// (32 words = 2048 columns, far past every realistic geometry).
pub const MAX_FUSED_STRIDE: usize = 32;

/// A step sequence compiled once by [`Crossbar::compile_steps_rows`] and
/// replayed many times by [`Crossbar::exec_fused_rows`]: resolved
/// word/shift addressing, packed init masks, and the sequence-wide
/// touched/armed column masks. Compilation pins the crossbar width,
/// stride and strictness; replaying against a different configuration
/// panics.
#[derive(Clone)]
pub struct FusedRowsPlan {
    cols: usize,
    stride: usize,
    strict: bool,
    prog_armed: Vec<u64>,
    touched: Vec<u64>,
    mask_arena: Vec<u64>,
    input_arena: Vec<(usize, u32)>,
    ops: Vec<FusedOp>,
    init_steps: u64,
    init_cells: u64,
    nor_steps: u64,
    /// Every stride word any op reads or writes, ascending — the words the
    /// bit-sliced executor transposes in and out.
    used_words: Vec<u16>,
    /// Inverse of `used_words`: stride word → slot index, `u16::MAX` if
    /// unused.
    word_slot: [u16; MAX_FUSED_STRIDE],
}

impl FusedRowsPlan {
    /// The sequence-wide touched-column mask (one word per stride word):
    /// columns any step writes (inits and NOR outputs).
    pub fn touched_words(&self) -> &[u64] {
        &self.touched
    }

    /// Number of compiled steps.
    pub fn steps(&self) -> usize {
        self.ops.len()
    }

    /// Runs the compiled sequence over raw row-major word slices covering
    /// whole rows (`len` a multiple of the compiled stride): each row's
    /// words are pulled into locals once, every step runs on them as plain
    /// ALU operations, and the row is stored back. Rows are independent,
    /// so callers may split both slices at row boundaries and run chunks
    /// concurrently — results are bit-identical regardless of the split.
    /// Four-row lanes keep the word kernels wide enough for the
    /// autovectorizer; the remainder runs one row at a time.
    pub fn run_on_rows(&self, bits: &mut [u64], armed: &mut [u64]) {
        debug_assert_eq!(bits.len() % self.stride, 0, "partial row slice");
        debug_assert_eq!(bits.len(), armed.len(), "plane length mismatch");
        // Enough rows amortize a bit-sliced pass: transpose the used words
        // so each gate costs a handful of word ops for *all* rows at once.
        // Below the break-even (transpose cost ≈ a few gates' worth of
        // row-lane work) the straight multi-lane row kernel wins. Both
        // paths are bit-identical, so the cutover is purely a host-time
        // choice.
        if bits.len() / self.stride >= SLICE_MIN_ROWS && !self.used_words.is_empty() {
            self.run_sliced(bits, armed);
            return;
        }
        const LANES: usize = 4;
        let stride = self.stride;
        let span = LANES * stride;
        let main = bits.len() / span * span;
        let (bits_main, bits_rest) = bits.split_at_mut(main);
        let (armed_main, armed_rest) = armed.split_at_mut(main);
        for (rows, arows) in bits_main
            .chunks_exact_mut(span)
            .zip(armed_main.chunks_exact_mut(span))
        {
            self.run_lanes::<LANES>(rows, arows);
        }
        for (row, arow) in bits_rest
            .chunks_exact_mut(stride)
            .zip(armed_rest.chunks_exact_mut(stride))
        {
            self.run_lanes::<1>(row, arow);
        }
    }

    /// The bit-sliced executor: transposes every used stride word into
    /// column-major form (one packed word-vector per crossbar column, bit
    /// `i` = row `i` of the slice), runs each gate as `ceil(rows/64)` word
    /// operations covering **all** rows at once, and transposes back. The
    /// 64×64 tile transposes are the only per-row cost, so a long step
    /// sequence over many rows runs at gate-granularity instead of
    /// row-granularity. Bit-identical to the row-lane path.
    fn run_sliced(&self, bits: &mut [u64], armed: &mut [u64]) {
        let stride = self.stride;
        let rows = bits.len() / stride;
        let nw = rows.div_ceil(64);
        let slots = self.used_words.len();
        SLICE_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            buf.clear();
            buf.resize(slots * 64 * nw, 0);
            let mut tile = [0u64; 64];
            for (k, &w) in self.used_words.iter().enumerate() {
                let w = w as usize;
                let base = k * 64 * nw;
                for t in 0..nw {
                    let r0 = t * 64;
                    let tr = (rows - r0).min(64);
                    for (i, slot) in tile.iter_mut().enumerate().take(tr) {
                        *slot = bits[(r0 + i) * stride + w];
                    }
                    tile[tr..].fill(0);
                    transpose64(&mut tile);
                    for (j, &col) in tile.iter().enumerate() {
                        buf[base + j * nw + t] = col;
                    }
                }
            }
            // Column vector base of cell (word w, shift s).
            let cv = |w: usize, s: u32| (self.word_slot[w] as usize * 64 + s as usize) * nw;
            for op in &self.ops {
                match op {
                    FusedOp::Init { arena } => {
                        let masks = &self.mask_arena[arena.clone()];
                        for (k, &w) in self.used_words.iter().enumerate() {
                            let mut mw = masks[w as usize];
                            while mw != 0 {
                                let s = mw.trailing_zeros() as usize;
                                mw &= mw - 1;
                                let base = (k * 64 + s) * nw;
                                buf[base..base + nw].fill(!0u64);
                            }
                        }
                    }
                    FusedOp::Not { w, s, ow, osh } => {
                        let (ib, ob) = (cv(*w, *s), cv(*ow, *osh));
                        for t in 0..nw {
                            buf[ob + t] = !buf[ib + t];
                        }
                    }
                    FusedOp::Nor2 {
                        w1,
                        s1,
                        w2,
                        s2,
                        ow,
                        osh,
                    } => {
                        let (i1, i2, ob) = (cv(*w1, *s1), cv(*w2, *s2), cv(*ow, *osh));
                        for t in 0..nw {
                            buf[ob + t] = !(buf[i1 + t] | buf[i2 + t]);
                        }
                    }
                    FusedOp::NorN { arena, ow, osh } => {
                        let ob = cv(*ow, *osh);
                        let mut acc = [0u64; 16];
                        let chunks = nw.div_ceil(16);
                        for ch in 0..chunks {
                            let t0 = ch * 16;
                            let tn = (nw - t0).min(16);
                            acc[..tn].fill(0);
                            for &(w, s) in &self.input_arena[arena.clone()] {
                                let ib = cv(w, s) + t0;
                                for (t, a) in acc.iter_mut().enumerate().take(tn) {
                                    *a |= buf[ib + t];
                                }
                            }
                            for (t, &a) in acc.iter().enumerate().take(tn) {
                                buf[ob + t0 + t] = !a;
                            }
                        }
                    }
                }
            }
            for (k, &w) in self.used_words.iter().enumerate() {
                let w = w as usize;
                let base = k * 64 * nw;
                for t in 0..nw {
                    let r0 = t * 64;
                    let tr = (rows - r0).min(64);
                    for (j, slot) in tile.iter_mut().enumerate() {
                        *slot = buf[base + j * nw + t];
                    }
                    transpose64(&mut tile);
                    for (i, &row) in tile.iter().enumerate().take(tr) {
                        bits[(r0 + i) * stride + w] = row;
                    }
                }
            }
        });
        // Armed plane: same per-row masked update the lane path applies.
        for arow in armed.chunks_exact_mut(stride) {
            for ((aw, &t), &pa) in arow.iter_mut().zip(&self.touched).zip(&self.prog_armed) {
                *aw = (*aw & !t) | pa;
            }
        }
    }

    /// One pass over `L` consecutive rows held in locals — the multi-lane
    /// inner loop of [`FusedRowsPlan::run_on_rows`].
    fn run_lanes<const L: usize>(&self, rows: &mut [u64], arows: &mut [u64]) {
        let stride = self.stride;
        let mut local = [[0u64; MAX_FUSED_STRIDE]; L];
        for (l, row) in rows.chunks_exact(stride).enumerate() {
            local[l][..stride].copy_from_slice(row);
        }
        for op in &self.ops {
            match op {
                FusedOp::Init { arena } => {
                    let masks = &self.mask_arena[arena.clone()];
                    for lane in local.iter_mut() {
                        for (w, &mask) in lane[..stride].iter_mut().zip(masks) {
                            *w |= mask;
                        }
                    }
                }
                FusedOp::Not { w, s, ow, osh } => {
                    for lane in local.iter_mut() {
                        let any = lane[*w] >> s;
                        lane[*ow] = (lane[*ow] & !(1u64 << osh)) | ((!any & 1) << osh);
                    }
                }
                FusedOp::Nor2 {
                    w1,
                    s1,
                    w2,
                    s2,
                    ow,
                    osh,
                } => {
                    for lane in local.iter_mut() {
                        let any = (lane[*w1] >> s1) | (lane[*w2] >> s2);
                        lane[*ow] = (lane[*ow] & !(1u64 << osh)) | ((!any & 1) << osh);
                    }
                }
                FusedOp::NorN { arena, ow, osh } => {
                    for lane in local.iter_mut() {
                        let mut any = 0u64;
                        for &(w, s) in &self.input_arena[arena.clone()] {
                            any |= lane[w] >> s;
                        }
                        lane[*ow] = (lane[*ow] & !(1u64 << osh)) | ((!any & 1) << osh);
                    }
                }
            }
        }
        for (l, row) in rows.chunks_exact_mut(stride).enumerate() {
            row.copy_from_slice(&local[l][..stride]);
        }
        for arow in arows.chunks_exact_mut(stride) {
            for ((aw, &t), &pa) in arow.iter_mut().zip(&self.touched).zip(&self.prog_armed) {
                *aw = (*aw & !t) | pa;
            }
        }
    }
}

/// Minimum rows for [`FusedRowsPlan::run_on_rows`] to take the bit-sliced
/// path: below this the 64×64 tile transposes cost more than they save.
const SLICE_MIN_ROWS: usize = 16;

thread_local! {
    /// Scratch plane of the bit-sliced executor — per thread so scoped
    /// worker teams replay disjoint row chunks without sharing, and
    /// reused across waves so the steady state stays allocation-free.
    static SLICE_SCRATCH: std::cell::RefCell<Vec<u64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3 doubled up):
/// afterwards bit `i` of word `j` is the previous bit `j` of word `i`.
pub fn transpose64(a: &mut [u64; 64]) {
    // The textbook routine is MSB-first; this is its LSB-first mirror
    // (bit `j` of word `i` is element (i, j)), so shifts run the other way.
    let mut j = 32usize;
    let mut m = 0xFFFF_FFFF_0000_0000u64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] << j)) & m;
            a[k] ^= t;
            a[k + j] ^= t >> j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m >> j;
    }
}

/// A compiled column-parallel step: line indices resolved into the line
/// arena.
#[derive(Clone)]
enum FusedColOp {
    /// Set+arm the arena rows across the selected columns.
    Init { arena: std::ops::Range<usize> },
    /// NOR of the arena input rows into row `out`, per selected column.
    Nor {
        arena: std::ops::Range<usize>,
        out: usize,
    },
}

/// The column-parallel transpose of [`FusedRowsPlan`], produced by
/// [`Crossbar::compile_steps_cols`] and replayed by
/// [`Crossbar::exec_fused_cols`].
#[derive(Clone)]
pub struct FusedColsPlan {
    rows: usize,
    stride: usize,
    strict: bool,
    line_arena: Vec<usize>,
    ops: Vec<FusedColOp>,
    /// Every row the sequence writes, ascending, with its final armed
    /// state over the selected columns.
    touched_lines: Vec<(usize, bool)>,
    init_steps: u64,
    init_cells: u64,
    nor_steps: u64,
}

impl FusedColsPlan {
    /// The rows the sequence writes (ascending) with their final armed
    /// state — the transpose of [`FusedRowsPlan::touched_words`].
    pub fn touched_lines(&self) -> impl Iterator<Item = usize> + '_ {
        self.touched_lines.iter().map(|&(r, _)| r)
    }

    /// Number of compiled steps.
    pub fn steps(&self) -> usize {
        self.ops.len()
    }
}

impl std::fmt::Debug for Crossbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crossbar")
            .field("rows", &self.rows())
            .field("cols", &self.cols())
            .field("strict", &self.strict)
            .field("engine", &self.engine)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose64_matches_naive() {
        let mut a = [0u64; 64];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for w in a.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = x;
        }
        let orig = a;
        transpose64(&mut a);
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!(a[j] >> i & 1, orig[i] >> j & 1, "({i},{j})");
            }
        }
        // An involution: transposing twice restores the matrix.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn sliced_and_lane_paths_agree() {
        // Enough rows for the sliced path on one grid, few enough for the
        // lane path on the other; identical programs must agree bit for bit
        // on the shared row prefix.
        let cols = 130; // three stride words, cells crossing both seams
        let steps = vec![
            ParallelStep::Init((0..cols).step_by(7).collect()),
            ParallelStep::Nor(vec![1, 2], 0),
            ParallelStep::Init(vec![63, 64, 127, 128]),
            ParallelStep::Nor(vec![0, 63], 64),
            ParallelStep::Nor(vec![64], 127),
            ParallelStep::Nor(vec![127, 1, 2, 3], 128),
        ];
        let mut big = armed_xb(SLICE_MIN_ROWS + 70, cols);
        let mut small = armed_xb(SLICE_MIN_ROWS - 1, cols);
        let mut x = 1u64;
        for r in 0..big.rows() {
            for c in 0..cols {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                let v = x >> 40 & 1 != 0;
                big.write_bit(r, c, v);
                if r < small.rows() {
                    small.write_bit(r, c, v);
                }
            }
        }
        let pb = big.compile_steps_rows(&steps).expect("fusable");
        let ps = small.compile_steps_rows(&steps).expect("fusable");
        big.exec_fused_rows(&pb, 0..big.rows());
        small.exec_fused_rows(&ps, 0..small.rows());
        for r in 0..small.rows() {
            for c in 0..cols {
                assert_eq!(big.bit(r, c), small.bit(r, c), "({r},{c})");
            }
        }
    }

    fn armed_xb(rows: usize, cols: usize) -> Crossbar {
        let mut xb = Crossbar::new(rows, cols);
        xb.set_strict(false);
        xb
    }

    #[test]
    fn nor_truth_table_single_row() {
        for (a, b, want) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            let mut xb = Crossbar::new(1, 3);
            xb.write_bit(0, 0, a);
            xb.write_bit(0, 1, b);
            xb.exec_init_rows(&[2], &LineSet::One(0)).unwrap();
            xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap();
            assert_eq!(xb.bit(0, 2), want, "NOR({a},{b})");
        }
    }

    #[test]
    fn not_is_single_input_nor() {
        let mut xb = Crossbar::new(2, 2);
        xb.write_bit(0, 0, true);
        xb.write_bit(1, 0, false);
        xb.exec_init_rows(&[1], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[0], 1, &LineSet::All).unwrap();
        assert!(!xb.bit(0, 1));
        assert!(xb.bit(1, 1));
    }

    #[test]
    fn row_parallelism_applies_same_gate_everywhere() {
        let n = 64;
        let mut xb = armed_xb(n, 3);
        for r in 0..n {
            xb.write_bit(r, 0, r % 2 == 0);
            xb.write_bit(r, 1, r % 3 == 0);
        }
        xb.exec_init_rows(&[2], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[0, 1], 2, &LineSet::All).unwrap();
        for r in 0..n {
            let want = !((r % 2 == 0) || (r % 3 == 0));
            assert_eq!(xb.bit(r, 2), want, "row {r}");
        }
        // The whole sweep costs exactly 2 cycles: init + gate.
        assert_eq!(xb.stats().cycles, 2);
    }

    #[test]
    fn column_parallel_nor() {
        let mut xb = Crossbar::new(3, 4);
        xb.write_row(0, &[true, false, true, false]);
        xb.write_row(1, &[false, false, true, true]);
        xb.exec_init_cols(&[2], &LineSet::All).unwrap();
        xb.exec_nor_cols(&[0, 1], 2, &LineSet::All).unwrap();
        assert_eq!(xb.row(2), vec![false, true, false, false]);
    }

    #[test]
    fn strict_mode_rejects_unarmed_output() {
        let mut xb = Crossbar::new(1, 3);
        let err = xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap_err();
        assert_eq!(err, XbarError::OutputNotInitialized { row: 0, col: 2 });
    }

    #[test]
    fn strict_mode_rejects_double_drive() {
        let mut xb = Crossbar::new(1, 4);
        xb.exec_init_rows(&[2], &LineSet::One(0)).unwrap();
        xb.exec_nor_rows(&[0, 1], 2, &LineSet::One(0)).unwrap();
        // Output no longer armed; a second gate into the same cell must fail.
        let err = xb.exec_nor_rows(&[0, 3], 2, &LineSet::One(0)).unwrap_err();
        assert!(matches!(err, XbarError::OutputNotInitialized { .. }));
    }

    #[test]
    fn conventional_write_disarms() {
        let mut xb = Crossbar::new(1, 2);
        xb.exec_init_rows(&[1], &LineSet::One(0)).unwrap();
        xb.exec_write_row(0, &[true, true]).unwrap();
        let err = xb.exec_nor_rows(&[0], 1, &LineSet::One(0)).unwrap_err();
        assert!(matches!(err, XbarError::OutputNotInitialized { .. }));
    }

    #[test]
    fn input_output_overlap_rejected() {
        let mut xb = armed_xb(1, 3);
        let err = xb.exec_nor_rows(&[0, 2], 2, &LineSet::One(0)).unwrap_err();
        assert_eq!(err, XbarError::InputOutputOverlap { line: 2 });
    }

    #[test]
    fn no_inputs_rejected() {
        let mut xb = armed_xb(1, 3);
        assert_eq!(
            xb.exec_nor_rows(&[], 2, &LineSet::One(0)).unwrap_err(),
            XbarError::NoInputs
        );
        assert_eq!(
            xb.exec_nor_cols(&[], 0, &LineSet::One(0)).unwrap_err(),
            XbarError::NoInputs
        );
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut xb = armed_xb(2, 2);
        assert!(matches!(
            xb.exec_nor_rows(&[0], 5, &LineSet::One(0)),
            Err(XbarError::ColOutOfBounds { index: 5, cols: 2 })
        ));
        assert!(matches!(
            xb.exec_nor_rows(&[0], 1, &LineSet::One(7)),
            Err(XbarError::RowOutOfBounds { index: 7, rows: 2 })
        ));
        assert!(matches!(
            xb.exec_read_row(9),
            Err(XbarError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_bounds_errors_scalar_reference() {
        let mut xb = armed_xb(2, 2);
        xb.set_engine(SimEngine::ScalarReference);
        assert_eq!(xb.engine(), SimEngine::ScalarReference);
        assert!(matches!(
            xb.exec_nor_rows(&[0], 1, &LineSet::One(7)),
            Err(XbarError::RowOutOfBounds { index: 7, rows: 2 })
        ));
        assert!(matches!(
            xb.exec_init_cols(&[0], &LineSet::One(9)),
            Err(XbarError::ColOutOfBounds { index: 9, cols: 2 })
        ));
    }

    #[test]
    fn read_and_write_rows_cost_cycles() {
        let mut xb = Crossbar::new(2, 3);
        xb.exec_write_row(0, &[true, false, true]).unwrap();
        let row = xb.exec_read_row(0).unwrap();
        assert_eq!(row, vec![true, false, true]);
        assert_eq!(xb.stats().read_cycles, 1);
        assert_eq!(xb.stats().write_cycles, 1);
        assert_eq!(xb.stats().cycles, 2);
    }

    #[test]
    fn write_row_shape_mismatch() {
        let mut xb = Crossbar::new(1, 3);
        assert!(matches!(
            xb.exec_write_row(0, &[true]),
            Err(XbarError::ShapeMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }

    #[test]
    fn flip_bit_models_soft_error_invisibly() {
        let mut xb = Crossbar::new(1, 2);
        xb.exec_init_rows(&[1], &LineSet::One(0)).unwrap();
        let cycles_before = xb.stats().cycles;
        xb.flip_bit(0, 1);
        assert_eq!(xb.stats().cycles, cycles_before, "faults are free");
        // The cell stays armed: the controller cannot see the fault, so a
        // pending gate will still fire (now with a corrupted initial state).
        xb.exec_nor_rows(&[0], 1, &LineSet::One(0)).unwrap();
    }

    #[test]
    fn init_cols_arms_cells() {
        let mut xb = Crossbar::new(3, 3);
        xb.write_row(0, &[true, false, false]);
        xb.exec_init_cols(&[1], &LineSet::All).unwrap();
        xb.exec_nor_cols(&[0], 1, &LineSet::All).unwrap();
        assert_eq!(xb.row(1), vec![false, true, true]);
    }

    #[test]
    fn explicit_lineset_touches_only_selected_rows() {
        let mut xb = Crossbar::new(4, 2);
        xb.exec_init_rows(&[1], &LineSet::Explicit(vec![1, 3]))
            .unwrap();
        xb.exec_nor_rows(&[0], 1, &LineSet::Explicit(vec![1, 3]))
            .unwrap();
        // Rows 0 and 2 untouched (still 0), rows 1 and 3 got NOT(0) = 1.
        assert!(!xb.bit(0, 1));
        assert!(xb.bit(1, 1));
        assert!(!xb.bit(2, 1));
        assert!(xb.bit(3, 1));
    }

    #[test]
    fn engines_agree_on_a_mixed_sequence_past_word_boundaries() {
        // 70 lines: every word-parallel op crosses the 64-bit boundary and
        // exercises the slack-bit edge of the final mask word.
        let run = |engine: SimEngine| {
            let mut xb = Crossbar::new(70, 70);
            xb.set_engine(engine);
            for r in 0..70 {
                for c in 0..4 {
                    xb.write_bit(r, c, (r * 7 + c) % 3 == 0);
                }
            }
            xb.exec_init_rows(&[5, 65], &LineSet::Range(10..70))
                .unwrap();
            xb.exec_nor_rows(&[0, 1], 5, &LineSet::Range(10..70))
                .unwrap();
            xb.exec_nor_rows(&[2], 65, &LineSet::Explicit(vec![69, 10, 63, 64]))
                .unwrap();
            xb.exec_init_cols(&[7, 68], &LineSet::All).unwrap();
            xb.exec_nor_cols(&[0, 69], 7, &LineSet::All).unwrap();
            xb.exec_nor_cols(&[5], 68, &LineSet::Range(60..70)).unwrap();
            xb
        };
        let word = run(SimEngine::WordParallel);
        let scalar = run(SimEngine::ScalarReference);
        assert_eq!(word.grid().diff(scalar.grid()), vec![]);
        assert_eq!(word.stats(), scalar.stats());
    }
}
