//! Cycle and operation accounting for crossbar simulation.

/// The kinds of single-cycle operations a MAGIC crossbar controller issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Parallel NOR gate (includes 1-input NOR, i.e. NOT).
    Nor,
    /// Initialization of output memristors to LRS.
    Init,
    /// Conventional read through the sense amplifiers.
    Read,
    /// Conventional write through the drivers.
    Write,
}

/// Running counters for a crossbar: total cycles plus per-kind breakdowns.
///
/// Every `exec_*` call on a [`crate::Crossbar`] costs exactly one clock
/// cycle, matching the abstraction of SIMPLER and of the paper's Table I.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{Crossbar, LineSet};
///
/// # fn main() -> Result<(), pimecc_xbar::XbarError> {
/// let mut xb = Crossbar::new(2, 4);
/// xb.exec_init_rows(&[3], &LineSet::All)?;
/// xb.exec_nor_rows(&[0, 1], 3, &LineSet::All)?;
/// assert_eq!(xb.stats().init_cycles, 1);
/// assert_eq!(xb.stats().nor_cycles, 1);
/// assert_eq!(xb.stats().nor_gates, 2); // one gate per selected row
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Total clock cycles consumed.
    pub cycles: u64,
    /// Cycles spent on NOR/NOT gates.
    pub nor_cycles: u64,
    /// Cycles spent initializing cells to LRS.
    pub init_cycles: u64,
    /// Cycles spent on conventional reads.
    pub read_cycles: u64,
    /// Cycles spent on conventional writes.
    pub write_cycles: u64,
    /// Total individual NOR gates executed (one per selected line per op,
    /// weighted by nothing else); a proxy for switching energy.
    pub nor_gates: u64,
    /// Total individual cells initialized.
    pub cells_initialized: u64,
}

impl Stats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single-cycle operation of `kind` touching `cells` cells.
    pub(crate) fn record(&mut self, kind: OpKind, cells: u64) {
        self.cycles += 1;
        match kind {
            OpKind::Nor => {
                self.nor_cycles += 1;
                self.nor_gates += cells;
            }
            OpKind::Init => {
                self.init_cycles += 1;
                self.cells_initialized += cells;
            }
            OpKind::Read => self.read_cycles += 1,
            OpKind::Write => self.write_cycles += 1,
        }
    }

    /// Records a fused replay's worth of per-step operations at once:
    /// `init_steps` init cycles totalling `init_cells` initialized cells,
    /// plus `nor_steps` NOR cycles of `nor_gates_each` parallel gates each
    /// — identical to the per-step [`Stats::record`] calls it replaces.
    pub(crate) fn record_bulk(
        &mut self,
        init_steps: u64,
        init_cells: u64,
        nor_steps: u64,
        nor_gates_each: u64,
    ) {
        self.cycles += init_steps + nor_steps;
        self.init_cycles += init_steps;
        self.cells_initialized += init_cells;
        self.nor_cycles += nor_steps;
        self.nor_gates += nor_steps * nor_gates_each;
    }

    /// Adds another stats block into this one (useful when aggregating over
    /// multiple crossbars of one memory).
    pub fn merge(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.nor_cycles += other.nor_cycles;
        self.init_cycles += other.init_cycles;
        self.read_cycles += other.read_cycles;
        self.write_cycles += other.write_cycles;
        self.nor_gates += other.nor_gates;
        self.cells_initialized += other.cells_initialized;
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles (nor {}, init {}, read {}, write {}); {} gates, {} cells init",
            self.cycles,
            self.nor_cycles,
            self.init_cycles,
            self.read_cycles,
            self.write_cycles,
            self.nor_gates,
            self.cells_initialized
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_kind() {
        let mut s = Stats::new();
        s.record(OpKind::Nor, 5);
        s.record(OpKind::Nor, 3);
        s.record(OpKind::Init, 10);
        s.record(OpKind::Read, 0);
        s.record(OpKind::Write, 0);
        assert_eq!(s.cycles, 5);
        assert_eq!(s.nor_cycles, 2);
        assert_eq!(s.nor_gates, 8);
        assert_eq!(s.init_cycles, 1);
        assert_eq!(s.cells_initialized, 10);
        assert_eq!(s.read_cycles, 1);
        assert_eq!(s.write_cycles, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Stats::new();
        a.record(OpKind::Nor, 2);
        let mut b = Stats::new();
        b.record(OpKind::Init, 4);
        a.merge(&b);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.nor_gates, 2);
        assert_eq!(a.cells_initialized, 4);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }
}
