//! Dense two-dimensional bit matrix used as the backing store of a crossbar.
//!
//! Rows are packed into `u64` words (row-major, each row starting on a word
//! boundary) so that whole-row operations — the common case for MAGIC
//! row-parallel gates, fault scans and parity sweeps — run a word at a time.

/// A dense `rows × cols` bit matrix.
///
/// # Example
///
/// ```
/// use pimecc_xbar::BitGrid;
///
/// let mut g = BitGrid::new(3, 70);
/// g.set(2, 69, true);
/// assert!(g.get(2, 69));
/// assert_eq!(g.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitGrid {
    rows: usize,
    cols: usize,
    /// Words per row (`ceil(cols / 64)`).
    stride: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Creates an all-zero grid.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "BitGrid dimensions must be non-zero");
        let stride = cols.div_ceil(64);
        BitGrid {
            rows,
            cols,
            stride,
            words: vec![0; rows * stride],
        }
    }

    /// Creates a grid with every bit set to `value`.
    pub fn filled(rows: usize, cols: usize, value: bool) -> Self {
        let mut g = Self::new(rows, cols);
        if value {
            g.fill(true);
        }
        g
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols, "bit index out of bounds");
        (r * self.stride + c / 64, 1u64 << (c % 64))
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.index(r, c);
        self.words[w] & mask != 0
    }

    /// Writes the bit at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, mask) = self.index(r, c);
        if value {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Flips the bit at `(r, c)` and returns its new value.
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) -> bool {
        let (w, mask) = self.index(r, c);
        self.words[w] ^= mask;
        self.words[w] & mask != 0
    }

    /// Sets every bit in the grid to `value`.
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        if value {
            self.clear_row_slack();
        }
    }

    /// Zeroes the unused high bits of each row's final word so that
    /// word-level scans (`count_ones`, iterators) never see slack bits.
    fn clear_row_slack(&mut self) {
        let rem = self.cols % 64;
        if rem == 0 {
            return;
        }
        let mask = (1u64 << rem) - 1;
        for r in 0..self.rows {
            self.words[r * self.stride + self.stride - 1] &= mask;
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns the whole row `r` as a `Vec<bool>` of length `cols`.
    pub fn row(&self, r: usize) -> Vec<bool> {
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// Returns the whole column `c` as a `Vec<bool>` of length `rows`.
    pub fn col(&self, c: usize) -> Vec<bool> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Overwrites row `r` from a slice of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != cols`.
    pub fn set_row(&mut self, r: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.cols, "row length mismatch");
        for (c, &b) in bits.iter().enumerate() {
            self.set(r, c, b);
        }
    }

    /// Overwrites column `c` from a slice of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows`.
    pub fn set_col(&mut self, c: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.rows, "column length mismatch");
        for (r, &b) in bits.iter().enumerate() {
            self.set(r, c, b);
        }
    }

    /// XORs row `other_row` of `other` into row `r` of `self`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn xor_row_from(&mut self, r: usize, other: &BitGrid, other_row: usize) {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let dst = r * self.stride;
        let src = other_row * other.stride;
        for i in 0..self.stride {
            self.words[dst + i] ^= other.words[src + i];
        }
    }

    /// Iterates over the coordinates of every set bit, row-major.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            grid: self,
            r: 0,
            c: 0,
        }
    }

    /// Returns the coordinates `(r, c)` of every bit that differs from
    /// `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn diff(&self, other: &BitGrid) -> Vec<(usize, usize)> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        let mut out = Vec::new();
        for r in 0..self.rows {
            for w in 0..self.stride {
                let mut delta = self.words[r * self.stride + w] ^ other.words[r * other.stride + w];
                while delta != 0 {
                    let bit = delta.trailing_zeros() as usize;
                    let c = w * 64 + bit;
                    if c < self.cols {
                        out.push((r, c));
                    }
                    delta &= delta - 1;
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "BitGrid({}x{}, {} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )?;
        if self.rows <= 16 && self.cols <= 64 {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    write!(f, "{}", if self.get(r, c) { '1' } else { '.' })?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Iterator over set-bit coordinates produced by [`BitGrid::iter_ones`].
pub struct IterOnes<'a> {
    grid: &'a BitGrid,
    r: usize,
    c: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.r < self.grid.rows {
            while self.c < self.grid.cols {
                let (r, c) = (self.r, self.c);
                self.c += 1;
                if self.grid.get(r, c) {
                    return Some((r, c));
                }
            }
            self.c = 0;
            self.r += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zero() {
        let g = BitGrid::new(5, 130);
        assert_eq!(g.count_ones(), 0);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.cols(), 130);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = BitGrid::new(0, 4);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut g = BitGrid::new(2, 129);
        for c in [0, 1, 63, 64, 65, 127, 128] {
            g.set(1, c, true);
            assert!(g.get(1, c), "col {c}");
            assert!(!g.get(0, c), "row 0 untouched at col {c}");
        }
        assert_eq!(g.count_ones(), 7);
    }

    #[test]
    fn flip_toggles_and_reports() {
        let mut g = BitGrid::new(1, 10);
        assert!(g.flip(0, 3));
        assert!(!g.flip(0, 3));
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn fill_true_respects_slack_bits() {
        let mut g = BitGrid::new(3, 70);
        g.fill(true);
        assert_eq!(g.count_ones(), 3 * 70);
        g.fill(false);
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn filled_constructor() {
        let g = BitGrid::filled(4, 4, true);
        assert_eq!(g.count_ones(), 16);
        let z = BitGrid::filled(4, 4, false);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    fn row_and_col_views() {
        let mut g = BitGrid::new(3, 3);
        g.set(0, 1, true);
        g.set(2, 1, true);
        assert_eq!(g.row(0), vec![false, true, false]);
        assert_eq!(g.col(1), vec![true, false, true]);
    }

    #[test]
    fn set_row_and_set_col() {
        let mut g = BitGrid::new(2, 3);
        g.set_row(0, &[true, false, true]);
        g.set_col(2, &[false, true]);
        assert_eq!(g.row(0), vec![true, false, false]);
        assert_eq!(g.row(1), vec![false, false, true]);
    }

    #[test]
    fn xor_row_from_other_grid() {
        let mut a = BitGrid::new(1, 100);
        let mut b = BitGrid::new(2, 100);
        a.set(0, 5, true);
        b.set(1, 5, true);
        b.set(1, 99, true);
        a.xor_row_from(0, &b, 1);
        assert!(!a.get(0, 5));
        assert!(a.get(0, 99));
    }

    #[test]
    fn diff_reports_mismatches() {
        let mut a = BitGrid::new(2, 65);
        let b = BitGrid::new(2, 65);
        a.set(0, 64, true);
        a.set(1, 0, true);
        assert_eq!(a.diff(&b), vec![(0, 64), (1, 0)]);
    }

    #[test]
    fn iter_ones_row_major() {
        let mut g = BitGrid::new(2, 3);
        g.set(1, 0, true);
        g.set(0, 2, true);
        let ones: Vec<_> = g.iter_ones().collect();
        assert_eq!(ones, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let g = BitGrid::new(2, 2);
        assert!(!format!("{g:?}").is_empty());
    }
}
