//! Dense two-dimensional bit matrix used as the backing store of a crossbar.
//!
//! Rows are packed into `u64` words (row-major, each row starting on a word
//! boundary) so that whole-row operations — the common case for MAGIC
//! row-parallel gates, fault scans and parity sweeps — run a word at a time.

/// A dense `rows × cols` bit matrix.
///
/// # Example
///
/// ```
/// use pimecc_xbar::BitGrid;
///
/// let mut g = BitGrid::new(3, 70);
/// g.set(2, 69, true);
/// assert!(g.get(2, 69));
/// assert_eq!(g.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitGrid {
    rows: usize,
    cols: usize,
    /// Words per row (`ceil(cols / 64)`).
    stride: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Creates an all-zero grid.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "BitGrid dimensions must be non-zero");
        let stride = cols.div_ceil(64);
        BitGrid {
            rows,
            cols,
            stride,
            words: vec![0; rows * stride],
        }
    }

    /// Creates a grid with every bit set to `value`.
    pub fn filled(rows: usize, cols: usize, value: bool) -> Self {
        let mut g = Self::new(rows, cols);
        if value {
            g.fill(true);
        }
        g
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row (`ceil(cols / 64)`) — the length of every row-word
    /// slice returned by [`BitGrid::row_words`].
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of words needed to hold one bit per *row* — the length of
    /// the buffers used by [`BitGrid::col_word_gather`] /
    /// [`BitGrid::col_word_scatter`].
    #[inline]
    pub fn col_words(&self) -> usize {
        self.rows.div_ceil(64)
    }

    /// The mask of valid bits in a row's final word (all-ones when `cols`
    /// is a multiple of 64).
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        match self.cols % 64 {
            0 => u64::MAX,
            rem => (1u64 << rem) - 1,
        }
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols, "bit index out of bounds");
        (r * self.stride + c / 64, 1u64 << (c % 64))
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.index(r, c);
        self.words[w] & mask != 0
    }

    /// Writes the bit at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, mask) = self.index(r, c);
        if value {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// Flips the bit at `(r, c)` and returns its new value.
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) -> bool {
        let (w, mask) = self.index(r, c);
        self.words[w] ^= mask;
        self.words[w] & mask != 0
    }

    /// Sets every bit in the grid to `value`.
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        if value {
            self.clear_row_slack();
        }
    }

    /// Zeroes the unused high bits of each row's final word so that
    /// word-level scans (`count_ones`, iterators) never see slack bits.
    fn clear_row_slack(&mut self) {
        let rem = self.cols % 64;
        if rem == 0 {
            return;
        }
        let mask = (1u64 << rem) - 1;
        for r in 0..self.rows {
            self.words[r * self.stride + self.stride - 1] &= mask;
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns the whole row `r` as a `Vec<bool>` of length `cols`.
    pub fn row(&self, r: usize) -> Vec<bool> {
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// Returns the whole column `c` as a `Vec<bool>` of length `rows`
    /// (word-strided: one indexed word read per row, no per-cell index
    /// arithmetic).
    pub fn col(&self, c: usize) -> Vec<bool> {
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, sh) = (c / 64, (c % 64) as u32);
        (0..self.rows)
            .map(|r| (self.words[r * self.stride + wc] >> sh) & 1 != 0)
            .collect()
    }

    /// Overwrites row `r` from a slice of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != cols`.
    pub fn set_row(&mut self, r: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.cols, "row length mismatch");
        for (c, &b) in bits.iter().enumerate() {
            self.set(r, c, b);
        }
    }

    /// Overwrites column `c` from a slice of bits (word-strided, like
    /// [`BitGrid::col`]).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows`.
    pub fn set_col(&mut self, c: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.rows, "column length mismatch");
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, sh) = (c / 64, (c % 64) as u32);
        let cell = 1u64 << sh;
        for (r, &b) in bits.iter().enumerate() {
            let w = &mut self.words[r * self.stride + wc];
            *w = (*w & !cell) | ((b as u64) << sh);
        }
    }

    /// The packed words of row `r` (bit `c % 64` of word `c / 64` is cell
    /// `(r, c)`; slack bits past `cols` are always zero).
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows, "row index out of bounds");
        &self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// The full packed word array, row-major with [`BitGrid::stride`] words
    /// per row — raw access for the crossbar's fused kernels.
    #[inline]
    pub(crate) fn words_raw(&self) -> &[u64] {
        &self.words
    }

    /// Mutable form of [`BitGrid::words_raw`]. Callers must preserve the
    /// slack-bit invariant (bits past `cols` stay zero).
    #[inline]
    pub(crate) fn words_raw_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Masked word-store into row `r`: for every word `i`, bits of
    /// `mask[i]` are replaced by the corresponding bits of `values[i]`;
    /// bits outside the mask are untouched. The caller must not set mask
    /// bits past `cols` (masks built from valid column indices never do).
    ///
    /// # Panics
    ///
    /// Panics if `values` or `mask` is shorter than [`BitGrid::stride`].
    #[inline]
    pub fn set_row_words_masked(&mut self, r: usize, values: &[u64], mask: &[u64]) {
        debug_assert!(r < self.rows, "row index out of bounds");
        let base = r * self.stride;
        let row = &mut self.words[base..base + self.stride];
        // Four-word lanes so the masked-merge vectorizes to 256-bit ops;
        // the stride tail runs word-at-a-time.
        let mut quads = row
            .chunks_exact_mut(4)
            .zip(values.chunks_exact(4))
            .zip(mask.chunks_exact(4));
        for ((w4, v4), m4) in &mut quads {
            for k in 0..4 {
                w4[k] = (w4[k] & !m4[k]) | (v4[k] & m4[k]);
            }
        }
        let done = self.stride / 4 * 4;
        for i in done..self.stride {
            let w = &mut row[i];
            *w = (*w & !mask[i]) | (values[i] & mask[i]);
        }
    }

    /// Clears every bit of row `r` selected by `mask` (word-wise
    /// `row &= !mask`).
    ///
    /// # Panics
    ///
    /// Panics if `mask` is shorter than [`BitGrid::stride`].
    #[inline]
    pub fn clear_row_words_masked(&mut self, r: usize, mask: &[u64]) {
        debug_assert!(r < self.rows, "row index out of bounds");
        let base = r * self.stride;
        for i in 0..self.stride {
            self.words[base + i] &= !mask[i];
        }
    }

    /// Zeroes every bit of row `r`.
    pub fn clear_row(&mut self, r: usize) {
        debug_assert!(r < self.rows, "row index out of bounds");
        let base = r * self.stride;
        self.words[base..base + self.stride].fill(0);
    }

    /// Zeroes every bit of column `c` (word-strided down the rows).
    pub fn clear_col(&mut self, c: usize) {
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, mask) = (c / 64, !(1u64 << (c % 64)));
        for r in 0..self.rows {
            self.words[r * self.stride + wc] &= mask;
        }
    }

    /// ORs the row words of every row in `rows` into `out` (which is *not*
    /// cleared first) — the word-parallel input-gather of a column-parallel
    /// NOR.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`BitGrid::stride`]; debug-panics on
    /// an out-of-bounds row.
    pub fn word_or_rows_into(&self, rows: &[usize], out: &mut [u64]) {
        for &r in rows {
            debug_assert!(r < self.rows, "row index out of bounds");
            let base = r * self.stride;
            let row = &self.words[base..base + self.stride];
            // Four-word lanes (see `set_row_words_masked`).
            for (o4, w4) in out[..self.stride]
                .chunks_exact_mut(4)
                .zip(row.chunks_exact(4))
            {
                for k in 0..4 {
                    o4[k] |= w4[k];
                }
            }
            let done = self.stride / 4 * 4;
            for i in done..self.stride {
                out[i] |= row[i];
            }
        }
    }

    /// Packs column `c` into `out`: bit `r % 64` of `out[r / 64]` is cell
    /// `(r, c)`. `out` must hold [`BitGrid::col_words`] words; slack bits
    /// past `rows` are left zero.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`BitGrid::col_words`].
    pub fn col_word_gather(&self, c: usize, out: &mut [u64]) {
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, sh) = (c / 64, (c % 64) as u32);
        let mut idx = wc;
        let mut acc = 0u64;
        let mut bit = 0u32;
        let mut out_i = 0usize;
        for _ in 0..self.rows {
            acc |= ((self.words[idx] >> sh) & 1) << bit;
            idx += self.stride;
            bit += 1;
            if bit == 64 {
                out[out_i] = acc;
                out_i += 1;
                acc = 0;
                bit = 0;
            }
        }
        if bit > 0 {
            out[out_i] = acc;
        }
    }

    /// Unpacks `values` into column `c` for every row selected by `mask`
    /// (the transpose of [`BitGrid::col_word_gather`]): rows whose mask bit
    /// is clear keep their current value. The caller must not set mask
    /// bits past `rows`.
    pub fn col_word_scatter(&mut self, c: usize, values: &[u64], mask: &[u64]) {
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, sh) = (c / 64, (c % 64) as u32);
        let cell = 1u64 << sh;
        for (wi, &mw) in mask.iter().enumerate() {
            let mut remaining = mw;
            while remaining != 0 {
                let bit = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                let r = wi * 64 + bit;
                let w = &mut self.words[r * self.stride + wc];
                *w = (*w & !cell) | (((values[wi] >> bit) & 1) << sh);
            }
        }
    }

    /// ORs `values` (a row-shaped word vector) into every row selected by
    /// `rows_mask`, skipping all-zero value words — the word-parallel core
    /// of a row-parallel initialization.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than [`BitGrid::stride`]; the caller
    /// must not set mask bits past `rows` or value bits past `cols`.
    pub fn or_words_in_rows(&mut self, rows_mask: &[u64], values: &[u64]) {
        for (wi, &mw) in rows_mask.iter().enumerate() {
            let mut w = mw;
            while w != 0 {
                let r = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let base = r * self.stride;
                for k in 0..self.stride {
                    let v = values[k];
                    if v != 0 {
                        self.words[base + k] |= v;
                    }
                }
            }
        }
    }

    /// Clears the bit of column `c` in every row selected by `rows_mask`.
    pub fn clear_col_masked(&mut self, c: usize, rows_mask: &[u64]) {
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, mask) = (c / 64, !(1u64 << (c % 64)));
        for (wi, &mw) in rows_mask.iter().enumerate() {
            let mut w = mw;
            while w != 0 {
                let r = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                self.words[r * self.stride + wc] &= mask;
            }
        }
    }

    /// Reads `width ≤ 64` consecutive bits of row `r` starting at column
    /// `c0`, packed into the low bits of the returned word (bit `i` is
    /// cell `(r, c0 + i)`).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range exceeds `cols`.
    pub fn extract_bits(&self, r: usize, c0: usize, width: usize) -> u64 {
        assert!(width <= 64, "extract width exceeds one word");
        assert!(c0 + width <= self.cols, "bit range out of bounds");
        debug_assert!(r < self.rows, "row index out of bounds");
        if width == 0 {
            return 0;
        }
        let base = r * self.stride;
        let (w0, sh) = (c0 / 64, (c0 % 64) as u32);
        let mut v = self.words[base + w0] >> sh;
        if sh != 0 && (sh as usize) + width > 64 {
            v |= self.words[base + w0 + 1] << (64 - sh);
        }
        if width < 64 {
            v &= (1u64 << width) - 1;
        }
        v
    }

    /// Reads `width ≤ 64` consecutive bits of *column* `c` starting at row
    /// `r0`, packed into the low bits of the returned word (bit `i` is
    /// cell `(r0 + i, c)`) — the column-axis transpose of
    /// [`BitGrid::extract_bits`]. The column's word/shift addressing is
    /// resolved once, so the per-bit cost is a strided load plus two ALU
    /// ops.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range exceeds `rows`.
    pub fn extract_col_bits(&self, c: usize, r0: usize, width: usize) -> u64 {
        assert!(width <= 64, "extract width exceeds one word");
        assert!(r0 + width <= self.rows, "bit range out of bounds");
        debug_assert!(c < self.cols, "column index out of bounds");
        let (wc, sh) = (c / 64, (c % 64) as u32);
        let mut idx = r0 * self.stride + wc;
        let mut v = 0u64;
        for i in 0..width {
            v |= ((self.words[idx] >> sh) & 1) << i;
            idx += self.stride;
        }
        v
    }

    /// Writes `width ≤ 64` consecutive bits of row `r` starting at column
    /// `c0` from the low bits of `value` (the inverse of
    /// [`BitGrid::extract_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range exceeds `cols`.
    pub fn set_bits(&mut self, r: usize, c0: usize, width: usize, value: u64) {
        assert!(width <= 64, "set width exceeds one word");
        assert!(c0 + width <= self.cols, "bit range out of bounds");
        debug_assert!(r < self.rows, "row index out of bounds");
        if width == 0 {
            return;
        }
        let field = if width < 64 {
            (1u64 << width) - 1
        } else {
            u64::MAX
        };
        let value = value & field;
        let base = r * self.stride;
        let (w0, sh) = (c0 / 64, (c0 % 64) as u32);
        let w = &mut self.words[base + w0];
        *w = (*w & !(field << sh)) | (value << sh);
        if sh != 0 && (sh as usize) + width > 64 {
            let spill = (sh as usize) + width - 64;
            let high_field = (1u64 << spill) - 1;
            let w = &mut self.words[base + w0 + 1];
            *w = (*w & !high_field) | (value >> (64 - sh));
        }
    }

    /// XORs row `other_row` of `other` into row `r` of `self`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn xor_row_from(&mut self, r: usize, other: &BitGrid, other_row: usize) {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let dst = r * self.stride;
        let src = other_row * other.stride;
        for i in 0..self.stride {
            self.words[dst + i] ^= other.words[src + i];
        }
    }

    /// Iterates over the coordinates of every set bit, row-major.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            grid: self,
            r: 0,
            c: 0,
        }
    }

    /// Returns the coordinates `(r, c)` of every bit that differs from
    /// `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn diff(&self, other: &BitGrid) -> Vec<(usize, usize)> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        let mut out = Vec::new();
        for r in 0..self.rows {
            for w in 0..self.stride {
                let mut delta = self.words[r * self.stride + w] ^ other.words[r * other.stride + w];
                while delta != 0 {
                    let bit = delta.trailing_zeros() as usize;
                    let c = w * 64 + bit;
                    if c < self.cols {
                        out.push((r, c));
                    }
                    delta &= delta - 1;
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "BitGrid({}x{}, {} ones)",
            self.rows,
            self.cols,
            self.count_ones()
        )?;
        if self.rows <= 16 && self.cols <= 64 {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    write!(f, "{}", if self.get(r, c) { '1' } else { '.' })?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Iterator over set-bit coordinates produced by [`BitGrid::iter_ones`].
pub struct IterOnes<'a> {
    grid: &'a BitGrid,
    r: usize,
    c: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.r < self.grid.rows {
            while self.c < self.grid.cols {
                let (r, c) = (self.r, self.c);
                self.c += 1;
                if self.grid.get(r, c) {
                    return Some((r, c));
                }
            }
            self.c = 0;
            self.r += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zero() {
        let g = BitGrid::new(5, 130);
        assert_eq!(g.count_ones(), 0);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.cols(), 130);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = BitGrid::new(0, 4);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut g = BitGrid::new(2, 129);
        for c in [0, 1, 63, 64, 65, 127, 128] {
            g.set(1, c, true);
            assert!(g.get(1, c), "col {c}");
            assert!(!g.get(0, c), "row 0 untouched at col {c}");
        }
        assert_eq!(g.count_ones(), 7);
    }

    #[test]
    fn flip_toggles_and_reports() {
        let mut g = BitGrid::new(1, 10);
        assert!(g.flip(0, 3));
        assert!(!g.flip(0, 3));
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn fill_true_respects_slack_bits() {
        let mut g = BitGrid::new(3, 70);
        g.fill(true);
        assert_eq!(g.count_ones(), 3 * 70);
        g.fill(false);
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn filled_constructor() {
        let g = BitGrid::filled(4, 4, true);
        assert_eq!(g.count_ones(), 16);
        let z = BitGrid::filled(4, 4, false);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    fn row_and_col_views() {
        let mut g = BitGrid::new(3, 3);
        g.set(0, 1, true);
        g.set(2, 1, true);
        assert_eq!(g.row(0), vec![false, true, false]);
        assert_eq!(g.col(1), vec![true, false, true]);
    }

    #[test]
    fn set_row_and_set_col() {
        let mut g = BitGrid::new(2, 3);
        g.set_row(0, &[true, false, true]);
        g.set_col(2, &[false, true]);
        assert_eq!(g.row(0), vec![true, false, false]);
        assert_eq!(g.row(1), vec![false, false, true]);
    }

    #[test]
    fn xor_row_from_other_grid() {
        let mut a = BitGrid::new(1, 100);
        let mut b = BitGrid::new(2, 100);
        a.set(0, 5, true);
        b.set(1, 5, true);
        b.set(1, 99, true);
        a.xor_row_from(0, &b, 1);
        assert!(!a.get(0, 5));
        assert!(a.get(0, 99));
    }

    #[test]
    fn diff_reports_mismatches() {
        let mut a = BitGrid::new(2, 65);
        let b = BitGrid::new(2, 65);
        a.set(0, 64, true);
        a.set(1, 0, true);
        assert_eq!(a.diff(&b), vec![(0, 64), (1, 0)]);
    }

    #[test]
    fn iter_ones_row_major() {
        let mut g = BitGrid::new(2, 3);
        g.set(1, 0, true);
        g.set(0, 2, true);
        let ones: Vec<_> = g.iter_ones().collect();
        assert_eq!(ones, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let g = BitGrid::new(2, 2);
        assert!(!format!("{g:?}").is_empty());
    }

    #[test]
    fn row_words_expose_packed_rows() {
        let mut g = BitGrid::new(2, 130);
        g.set(1, 0, true);
        g.set(1, 64, true);
        g.set(1, 129, true);
        assert_eq!(g.stride(), 3);
        assert_eq!(g.row_words(0), &[0, 0, 0]);
        assert_eq!(g.row_words(1), &[1, 1, 2]);
        assert_eq!(g.tail_mask(), 3);
    }

    #[test]
    fn masked_row_word_store_respects_mask() {
        let mut g = BitGrid::new(1, 70);
        g.set(0, 0, true);
        g.set(0, 69, true);
        // Overwrite bits 1..3 only; bits 0 and 69 must survive.
        g.set_row_words_masked(0, &[0b110, 0], &[0b110, 0]);
        assert!(g.get(0, 0) && g.get(0, 1) && g.get(0, 2) && g.get(0, 69));
        g.clear_row_words_masked(0, &[0b111, 0]);
        assert!(!g.get(0, 0) && !g.get(0, 1) && g.get(0, 69));
        g.clear_row(0);
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn word_or_rows_accumulates() {
        let mut g = BitGrid::new(3, 70);
        g.set(0, 5, true);
        g.set(1, 65, true);
        let mut acc = vec![0u64; g.stride()];
        g.word_or_rows_into(&[0, 1], &mut acc);
        assert_eq!(acc, vec![1 << 5, 1 << 1]);
    }

    #[test]
    fn col_gather_scatter_round_trip_past_word_boundary() {
        let mut g = BitGrid::new(70, 3);
        for r in [0usize, 63, 64, 69] {
            g.set(r, 1, true);
        }
        let mut packed = vec![0u64; g.col_words()];
        g.col_word_gather(1, &mut packed);
        assert_eq!(packed[0], (1 << 63) | 1);
        assert_eq!(packed[1], (1 << (64 - 64)) | (1 << (69 - 64)));
        // Scatter the complement under a full mask: the column flips.
        let full = vec![u64::MAX, (1u64 << 6) - 1];
        let flipped: Vec<u64> = packed.iter().zip(&full).map(|(w, m)| !w & m).collect();
        g.col_word_scatter(1, &flipped, &full);
        for r in 0..70 {
            let want = !matches!(r, 0 | 63 | 64 | 69);
            assert_eq!(g.get(r, 1), want, "row {r}");
        }
        // Masked scatter leaves unselected rows alone.
        g.col_word_scatter(1, &packed, &[1, 0]);
        assert!(g.get(0, 1), "row 0 rewritten");
        assert!(!g.get(63, 1), "row 63 untouched by the mask");
    }

    #[test]
    fn extract_and_set_bits_span_word_boundaries() {
        let mut g = BitGrid::new(2, 130);
        g.set_bits(1, 60, 15, 0b101_0000_0100_0011);
        assert_eq!(g.extract_bits(1, 60, 15), 0b101_0000_0100_0011);
        assert!(g.get(1, 60) && g.get(1, 61) && g.get(1, 74));
        assert!(!g.get(1, 59) && !g.get(1, 75));
        // Aligned full-word access.
        g.set_bits(0, 64, 64, u64::MAX);
        assert_eq!(g.extract_bits(0, 64, 64), u64::MAX);
        assert_eq!(g.extract_bits(0, 0, 64), 0);
        assert_eq!(g.extract_bits(0, 0, 0), 0);
    }

    #[test]
    fn word_strided_col_matches_per_cell_semantics() {
        let mut g = BitGrid::new(67, 5);
        let bits: Vec<bool> = (0..67).map(|r| r % 3 == 0).collect();
        g.set_col(4, &bits);
        assert_eq!(g.col(4), bits);
        assert_eq!(g.count_ones(), bits.iter().filter(|&&b| b).count());
    }
}
