//! Inter-crossbar data movement with MAGIC NOT semantics.
//!
//! The DAC'21 architecture moves data between the MEM and the CMEM's
//! processing crossbars "with MAGIC NOT" through the barrel shifters —
//! electrically a stateful-logic gate whose inputs sit in one array and
//! whose outputs sit in another, sharing line voltages through the
//! connection fabric. Functionally: the destination cells (initialized to
//! LRS) receive the *complement* of the source cells, one clock cycle for
//! a whole line. Two chained transfers restore polarity; controllers
//! usually track polarity instead and fold it into the XOR3 programs.

use crate::crossbar::Crossbar;
use crate::error::XbarError;
use crate::Result;

/// Copies the complement of row `src_row` of `src` into row `dst_row` of
/// `dst` (MAGIC NOT transfer). The destination row must be armed
/// (initialized) first; this function performs the init itself, so the
/// complete transfer costs **two** cycles: one init on `dst`, one gate.
///
/// `width` cells are moved starting at column 0 of both arrays.
///
/// # Errors
///
/// * [`XbarError::RowOutOfBounds`] for bad row indices;
/// * [`XbarError::ShapeMismatch`] if `width` exceeds either array.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{transfer, Crossbar};
///
/// # fn main() -> Result<(), pimecc_xbar::XbarError> {
/// let mut mem = Crossbar::new(2, 4);
/// let mut pc = Crossbar::new(3, 4);
/// mem.write_row(0, &[true, false, true, false]);
/// transfer::not_row(&mut mem, 0, &mut pc, 2, 4)?;
/// assert_eq!(pc.row(2), vec![false, true, false, true]);
/// # Ok(())
/// # }
/// ```
pub fn not_row(
    src: &mut Crossbar,
    src_row: usize,
    dst: &mut Crossbar,
    dst_row: usize,
    width: usize,
) -> Result<()> {
    if src_row >= src.rows() {
        return Err(XbarError::RowOutOfBounds {
            index: src_row,
            rows: src.rows(),
        });
    }
    if dst_row >= dst.rows() {
        return Err(XbarError::RowOutOfBounds {
            index: dst_row,
            rows: dst.rows(),
        });
    }
    if width > src.cols() || width > dst.cols() {
        return Err(XbarError::ShapeMismatch {
            expected: width,
            actual: src.cols().min(dst.cols()),
        });
    }
    // Arm the destination cells (one parallel init cycle on dst).
    let cols: Vec<usize> = (0..width).collect();
    dst.exec_init_rows(&cols, &crate::LineSet::One(dst_row))?;
    // The gate cycle: bill it on the source array (the driver of the
    // shared lines), mirroring how the paper charges MEM cycles for
    // MEM->CMEM moves.
    let values: Vec<bool> = (0..width).map(|c| !src.bit(src_row, c)).collect();
    for (c, v) in values.into_iter().enumerate() {
        dst.write_bit(dst_row, c, v);
    }
    src.charge_transfer_cycle(width as u64);
    Ok(())
}

/// Copies the complement of a permuted row: destination column `i`
/// receives `NOT src[perm[i]]` — the shifter-in-the-path variant used for
/// diagonal alignment.
///
/// # Errors
///
/// As [`not_row`], plus [`XbarError::ColOutOfBounds`] for a permutation
/// entry beyond the source width.
pub fn not_row_permuted(
    src: &mut Crossbar,
    src_row: usize,
    dst: &mut Crossbar,
    dst_row: usize,
    perm: &[usize],
) -> Result<()> {
    if src_row >= src.rows() {
        return Err(XbarError::RowOutOfBounds {
            index: src_row,
            rows: src.rows(),
        });
    }
    if dst_row >= dst.rows() {
        return Err(XbarError::RowOutOfBounds {
            index: dst_row,
            rows: dst.rows(),
        });
    }
    if perm.len() > dst.cols() {
        return Err(XbarError::ShapeMismatch {
            expected: perm.len(),
            actual: dst.cols(),
        });
    }
    for &p in perm {
        if p >= src.cols() {
            return Err(XbarError::ColOutOfBounds {
                index: p,
                cols: src.cols(),
            });
        }
    }
    let cols: Vec<usize> = (0..perm.len()).collect();
    dst.exec_init_rows(&cols, &crate::LineSet::One(dst_row))?;
    let values: Vec<bool> = perm.iter().map(|&p| !src.bit(src_row, p)).collect();
    for (c, v) in values.into_iter().enumerate() {
        dst.write_bit(dst_row, c, v);
    }
    src.charge_transfer_cycle(perm.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_inverts_and_costs_two_cycles() {
        let mut mem = Crossbar::new(1, 8);
        let mut pc = Crossbar::new(11, 8);
        mem.write_row(0, &[true, true, false, false, true, false, true, false]);
        not_row(&mut mem, 0, &mut pc, 0, 8).unwrap();
        assert_eq!(
            pc.row(0),
            vec![false, false, true, true, false, true, false, true]
        );
        assert_eq!(pc.stats().init_cycles, 1);
        assert_eq!(mem.stats().nor_cycles, 1, "gate cycle billed on the driver");
    }

    #[test]
    fn double_transfer_restores_polarity() {
        let mut a = Crossbar::new(1, 4);
        let mut b = Crossbar::new(1, 4);
        let mut c = Crossbar::new(1, 4);
        a.write_row(0, &[true, false, false, true]);
        not_row(&mut a, 0, &mut b, 0, 4).unwrap();
        not_row(&mut b, 0, &mut c, 0, 4).unwrap();
        assert_eq!(c.row(0), a.row(0));
    }

    #[test]
    fn partial_width_leaves_tail_untouched() {
        let mut a = Crossbar::new(1, 8);
        let mut b = Crossbar::new(1, 8);
        a.write_row(0, &[true; 8]);
        b.write_bit(0, 7, true);
        not_row(&mut a, 0, &mut b, 0, 4).unwrap();
        assert_eq!(
            b.row(0),
            vec![false, false, false, false, false, false, false, true]
        );
    }

    #[test]
    fn permuted_transfer_applies_rotation() {
        let mut a = Crossbar::new(1, 6);
        let mut b = Crossbar::new(1, 6);
        a.write_row(0, &[true, false, false, false, false, false]);
        // Rotate left by 2 within the 6-wide group, with inversion.
        let perm: Vec<usize> = (0..6).map(|i| (i + 2) % 6).collect();
        not_row_permuted(&mut a, 0, &mut b, 0, &perm).unwrap();
        // dst[4] reads src[(4+2)%6] = src[0] = 1 -> inverted 0; everything
        // else reads 0 -> 1.
        assert_eq!(b.row(0), vec![true, true, true, true, false, true]);
    }

    #[test]
    fn errors_propagate() {
        let mut a = Crossbar::new(1, 4);
        let mut b = Crossbar::new(1, 4);
        assert!(matches!(
            not_row(&mut a, 5, &mut b, 0, 4),
            Err(XbarError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            not_row(&mut a, 0, &mut b, 9, 4),
            Err(XbarError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            not_row(&mut a, 0, &mut b, 0, 9),
            Err(XbarError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            not_row_permuted(&mut a, 0, &mut b, 0, &[0, 9]),
            Err(XbarError::ColOutOfBounds { .. })
        ));
    }
}
