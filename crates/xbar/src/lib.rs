//! Memristive crossbar array and MAGIC stateful-logic simulator.
//!
//! This crate is the device-level substrate of the `pimecc` workspace. It
//! models a memristor crossbar array (`[Crossbar]`) at the *functional*
//! abstraction used by the DAC'21 paper this workspace reproduces: every
//! memristor stores one logical bit (LRS = logic `1`, HRS = logic `0`), and
//! computation is performed with MAGIC stateful logic — NOR/NOT gates whose
//! inputs and output are memristors of the same row (or column), executed in
//! parallel across all selected rows (columns) in a single clock cycle.
//!
//! The simulator tracks:
//!
//! * logical state of every cell ([`BitGrid`]),
//! * MAGIC legality — an output memristor must be initialized to LRS before a
//!   gate drives it (strict mode, see [`Crossbar::set_strict`]),
//! * cycle and per-operation-kind statistics ([`Stats`]),
//! * injected soft errors ([`fault`]).
//!
//! # Example
//!
//! Compute `NOR` of two columns across every row of a crossbar in one cycle:
//!
//! ```
//! use pimecc_xbar::{Crossbar, LineSet};
//!
//! # fn main() -> Result<(), pimecc_xbar::XbarError> {
//! let mut xb = Crossbar::new(4, 8);
//! xb.write_bit(0, 0, true);
//! xb.write_bit(1, 1, true);
//! // MAGIC requires the output column to be initialized to logic 1 first.
//! xb.exec_init_rows(&[2], &LineSet::All)?;
//! xb.exec_nor_rows(&[0, 1], 2, &LineSet::All)?;
//! assert!(!xb.bit(0, 2)); // 1 NOR 0 = 0
//! assert!(xb.bit(2, 2)); // 0 NOR 0 = 1
//! assert_eq!(xb.stats().cycles, 2); // one init cycle + one gate cycle
//! # Ok(())
//! # }
//! ```

pub mod bitgrid;
pub mod crossbar;
pub mod error;
pub mod fault;
pub mod lineset;
pub mod stats;
pub mod transfer;

pub use bitgrid::BitGrid;
pub use crossbar::{
    transpose64, Crossbar, FusedColsPlan, FusedRowsPlan, ParallelStep, SimEngine, MAX_FUSED_STRIDE,
};
pub use error::XbarError;
pub use fault::{FaultInjector, FaultRecord};
pub use lineset::{LineIter, LineMask, LineSet};
pub use stats::{OpKind, Stats};

/// Crate-wide result alias for fallible crossbar operations.
pub type Result<T> = std::result::Result<T, XbarError>;
