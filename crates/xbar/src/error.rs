//! Error type for crossbar operations.

use std::fmt;

/// Errors raised by illegal crossbar or MAGIC operations.
///
/// # Example
///
/// ```
/// use pimecc_xbar::{Crossbar, LineSet, XbarError};
///
/// let mut xb = Crossbar::new(2, 2);
/// // Strict mode (default) rejects a NOR whose output was never initialized.
/// let err = xb.exec_nor_rows(&[0], 1, &LineSet::All).unwrap_err();
/// assert!(matches!(err, XbarError::OutputNotInitialized { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbarError {
    /// A row index was at or beyond the crossbar's row count.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the crossbar.
        rows: usize,
    },
    /// A column index was at or beyond the crossbar's column count.
    ColOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of columns in the crossbar.
        cols: usize,
    },
    /// A MAGIC gate would drive an output memristor that has not been
    /// initialized to LRS since it was last written (strict mode only).
    OutputNotInitialized {
        /// Row of the offending output cell.
        row: usize,
        /// Column of the offending output cell.
        col: usize,
    },
    /// A gate listed the same cell as both an input and its output.
    InputOutputOverlap {
        /// The line index (column for row-parallel ops, row for
        /// column-parallel ops) that appears on both sides.
        line: usize,
    },
    /// A gate was issued with no input lines.
    NoInputs,
    /// Two crossbars involved in a transfer have incompatible shapes.
    ShapeMismatch {
        /// Length expected by the destination.
        expected: usize,
        /// Length provided by the source.
        actual: usize,
    },
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::RowOutOfBounds { index, rows } => {
                write!(
                    f,
                    "row index {index} out of bounds for crossbar with {rows} rows"
                )
            }
            XbarError::ColOutOfBounds { index, cols } => {
                write!(
                    f,
                    "column index {index} out of bounds for crossbar with {cols} columns"
                )
            }
            XbarError::OutputNotInitialized { row, col } => {
                write!(
                    f,
                    "MAGIC output memristor ({row}, {col}) not initialized to LRS"
                )
            }
            XbarError::InputOutputOverlap { line } => {
                write!(f, "line {line} used as both gate input and output")
            }
            XbarError::NoInputs => write!(f, "MAGIC gate issued with no inputs"),
            XbarError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected length {expected}, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for XbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<XbarError> = vec![
            XbarError::RowOutOfBounds { index: 9, rows: 4 },
            XbarError::ColOutOfBounds { index: 9, cols: 4 },
            XbarError::OutputNotInitialized { row: 1, col: 2 },
            XbarError::InputOutputOverlap { line: 3 },
            XbarError::NoInputs,
            XbarError::ShapeMismatch {
                expected: 8,
                actual: 4,
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbarError>();
    }
}
