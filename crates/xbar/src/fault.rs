//! Soft-error injection for crossbar simulations.
//!
//! Soft errors in memristors (state drift, ion strikes, environmental upsets)
//! are modelled as independent Bernoulli bit flips: each cell flips with
//! probability `p` over the simulated exposure window. For the tiny
//! per-bit probabilities typical of FIT-scale rates, the injector skips
//! between flips geometrically instead of sampling every cell.

use crate::crossbar::Crossbar;
use rand::Rng;

/// A record of one injected soft error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultRecord {
    /// Row of the flipped cell.
    pub row: usize,
    /// Column of the flipped cell.
    pub col: usize,
}

/// Injects uniformly distributed independent bit flips into a [`Crossbar`].
///
/// # Example
///
/// ```
/// use pimecc_xbar::{Crossbar, FaultInjector};
/// use rand::SeedableRng;
///
/// let mut xb = Crossbar::new(64, 64);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let injector = FaultInjector::new(0.01);
/// let faults = injector.inject(&mut xb, &mut rng);
/// // Every flipped cell now reads 1 (flipped from the all-zero state).
/// assert_eq!(faults.len(), xb.grid().count_ones());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    p: f64,
}

impl FaultInjector {
    /// Creates an injector with per-bit flip probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        FaultInjector { p }
    }

    /// Per-bit flip probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Flips each cell of `xb` independently with probability `p`, returning
    /// the coordinates of every flip. Uses geometric skipping, so the cost is
    /// proportional to the number of flips, not the number of cells.
    pub fn inject<R: Rng + ?Sized>(&self, xb: &mut Crossbar, rng: &mut R) -> Vec<FaultRecord> {
        let cols = xb.cols();
        let total = xb.rows() * cols;
        let mut out = Vec::new();
        for idx in sample_indices(self.p, total, rng) {
            let (r, c) = (idx / cols, idx % cols);
            xb.flip_bit(r, c);
            out.push(FaultRecord { row: r, col: c });
        }
        out
    }

    /// Samples how many of `total` independent cells flip, without touching
    /// any crossbar — the cheap path for pure reliability Monte Carlo.
    pub fn sample_flip_positions<R: Rng + ?Sized>(&self, total: usize, rng: &mut R) -> Vec<usize> {
        sample_indices(self.p, total, rng)
    }
}

/// Returns sorted indices in `0..total`, each included independently with
/// probability `p`, via geometric gap sampling.
fn sample_indices<R: Rng + ?Sized>(p: f64, total: usize, rng: &mut R) -> Vec<usize> {
    let mut out = Vec::new();
    if p <= 0.0 || total == 0 {
        return out;
    }
    if p >= 1.0 {
        out.extend(0..total);
        return out;
    }
    // Geometric skipping: the gap until the next success of a Bernoulli(p)
    // process is floor(ln(U) / ln(1-p)).
    let ln_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / ln_q).floor();
        if !gap.is_finite() || gap >= (total - i) as f64 {
            break;
        }
        i += gap as usize;
        out.push(i);
        i += 1;
        if i >= total {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_injects_nothing() {
        let mut xb = Crossbar::new(32, 32);
        let mut rng = StdRng::seed_from_u64(1);
        let faults = FaultInjector::new(0.0).inject(&mut xb, &mut rng);
        assert!(faults.is_empty());
        assert_eq!(xb.grid().count_ones(), 0);
    }

    #[test]
    fn unit_probability_flips_everything() {
        let mut xb = Crossbar::new(8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let faults = FaultInjector::new(1.0).inject(&mut xb, &mut rng);
        assert_eq!(faults.len(), 64);
        assert_eq!(xb.grid().count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = FaultInjector::new(1.5);
    }

    #[test]
    fn flip_count_matches_binomial_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = 0.01;
        let total = 100_000;
        let trials = 50;
        let mut sum = 0usize;
        for _ in 0..trials {
            sum += FaultInjector::new(p)
                .sample_flip_positions(total, &mut rng)
                .len();
        }
        let mean = sum as f64 / trials as f64;
        let expect = p * total as f64; // 1000
                                       // 5-sigma band for a binomial mean over 50 trials (sigma ~ 4.4).
        assert!(
            (mean - expect).abs() < 25.0,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn sampled_indices_are_sorted_unique_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = FaultInjector::new(0.1).sample_flip_positions(1000, &mut rng);
        for w in idx.windows(2) {
            assert!(w[0] < w[1], "sorted and unique");
        }
        assert!(idx.iter().all(|&i| i < 1000));
    }

    #[test]
    fn inject_records_match_state_change() {
        let mut xb = Crossbar::new(16, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let faults = FaultInjector::new(0.05).inject(&mut xb, &mut rng);
        for f in &faults {
            assert!(xb.bit(f.row, f.col), "flip from 0 reads 1");
        }
        assert_eq!(faults.len(), xb.grid().count_ones());
    }

    #[test]
    fn tiny_probability_is_cheap_and_usually_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        // 1e-12 over 1e6 cells: expect ~1e-6 flips; must return instantly.
        let idx = FaultInjector::new(1e-12).sample_flip_positions(1_000_000, &mut rng);
        assert!(idx.len() <= 1);
    }
}
