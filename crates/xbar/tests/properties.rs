//! Property-based tests for the crossbar substrate: the MAGIC simulator must
//! agree with a plain software model of NOR on arbitrary data, and the
//! `BitGrid` must behave like a set of coordinates.

use pimecc_xbar::{BitGrid, Crossbar, FaultInjector, LineSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn nor_rows_matches_software_model(
        rows in 1usize..24,
        data in proptest::collection::vec(any::<bool>(), 24 * 8),
        in_a in 0usize..6,
        in_b in 0usize..6,
    ) {
        let cols = 8;
        let out_col = 7;
        let mut xb = Crossbar::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols - 1 {
                xb.write_bit(r, c, data[r * cols + c]);
            }
        }
        xb.exec_init_rows(&[out_col], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[in_a, in_b], out_col, &LineSet::All).unwrap();
        for r in 0..rows {
            let want = !(data[r * cols + in_a] | data[r * cols + in_b]);
            prop_assert_eq!(xb.bit(r, out_col), want);
        }
    }

    #[test]
    fn nor_cols_is_transpose_of_nor_rows(
        n in 2usize..16,
        data in proptest::collection::vec(any::<bool>(), 16 * 16),
    ) {
        // Run the same logical computation row-wise on M and column-wise on
        // M^T; results must be transposes of each other.
        let mut row_xb = Crossbar::new(n, n + 1);
        let mut col_xb = Crossbar::new(n + 1, n);
        for r in 0..n {
            for c in 0..n {
                let bit = data[r * 16 + c];
                row_xb.write_bit(r, c, bit);
                col_xb.write_bit(c, r, bit);
            }
        }
        let inputs: Vec<usize> = (0..n).collect();
        row_xb.exec_init_rows(&[n], &LineSet::All).unwrap();
        row_xb.exec_nor_rows(&inputs, n, &LineSet::All).unwrap();
        col_xb.exec_init_cols(&[n], &LineSet::All).unwrap();
        col_xb.exec_nor_cols(&inputs, n, &LineSet::All).unwrap();
        for r in 0..n {
            prop_assert_eq!(row_xb.bit(r, n), col_xb.bit(n, r));
        }
    }

    #[test]
    fn cycle_count_is_operation_count(ops in 1usize..40) {
        let mut xb = Crossbar::new(4, 4);
        xb.set_strict(false);
        for i in 0..ops {
            match i % 3 {
                0 => xb.exec_init_rows(&[3], &LineSet::All).unwrap(),
                1 => xb.exec_nor_rows(&[0, 1], 3, &LineSet::All).unwrap(),
                _ => { xb.exec_read_row(0).unwrap(); }
            }
        }
        prop_assert_eq!(xb.stats().cycles, ops as u64);
    }

    #[test]
    fn bitgrid_diff_is_symmetric_and_exact(
        coords_a in proptest::collection::btree_set((0usize..12, 0usize..70), 0..20),
        coords_b in proptest::collection::btree_set((0usize..12, 0usize..70), 0..20),
    ) {
        let mut a = BitGrid::new(12, 70);
        let mut b = BitGrid::new(12, 70);
        for &(r, c) in &coords_a { a.set(r, c, true); }
        for &(r, c) in &coords_b { b.set(r, c, true); }
        let d1 = a.diff(&b);
        let d2 = b.diff(&a);
        prop_assert_eq!(&d1, &d2);
        let sym: std::collections::BTreeSet<_> =
            coords_a.symmetric_difference(&coords_b).copied().collect();
        let got: std::collections::BTreeSet<_> = d1.into_iter().collect();
        prop_assert_eq!(got, sym);
    }

    #[test]
    fn fault_injection_flip_count_equals_record_count(p in 0.0f64..0.3, seed in 0u64..1000) {
        let mut xb = Crossbar::new(32, 32);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultInjector::new(p).inject(&mut xb, &mut rng);
        prop_assert_eq!(faults.len(), xb.grid().count_ones());
    }

    #[test]
    fn double_injection_with_same_plan_reverts(seed in 0u64..1000) {
        // Flipping the exact same cells twice restores the original state.
        let mut xb = Crossbar::new(16, 16);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultInjector::new(0.2).inject(&mut xb, &mut rng);
        for f in &faults {
            xb.flip_bit(f.row, f.col);
        }
        prop_assert_eq!(xb.grid().count_ones(), 0);
    }
}
