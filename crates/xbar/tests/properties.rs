//! Property-based tests for the crossbar substrate: the MAGIC simulator must
//! agree with a plain software model of NOR on arbitrary data, and the
//! `BitGrid` must behave like a set of coordinates.

use pimecc_xbar::{BitGrid, Crossbar, FaultInjector, LineSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn nor_rows_matches_software_model(
        rows in 1usize..24,
        data in proptest::collection::vec(any::<bool>(), 24 * 8),
        in_a in 0usize..6,
        in_b in 0usize..6,
    ) {
        let cols = 8;
        let out_col = 7;
        let mut xb = Crossbar::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols - 1 {
                xb.write_bit(r, c, data[r * cols + c]);
            }
        }
        xb.exec_init_rows(&[out_col], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[in_a, in_b], out_col, &LineSet::All).unwrap();
        for r in 0..rows {
            let want = !(data[r * cols + in_a] | data[r * cols + in_b]);
            prop_assert_eq!(xb.bit(r, out_col), want);
        }
    }

    #[test]
    fn nor_cols_is_transpose_of_nor_rows(
        n in 2usize..16,
        data in proptest::collection::vec(any::<bool>(), 16 * 16),
    ) {
        // Run the same logical computation row-wise on M and column-wise on
        // M^T; results must be transposes of each other.
        let mut row_xb = Crossbar::new(n, n + 1);
        let mut col_xb = Crossbar::new(n + 1, n);
        for r in 0..n {
            for c in 0..n {
                let bit = data[r * 16 + c];
                row_xb.write_bit(r, c, bit);
                col_xb.write_bit(c, r, bit);
            }
        }
        let inputs: Vec<usize> = (0..n).collect();
        row_xb.exec_init_rows(&[n], &LineSet::All).unwrap();
        row_xb.exec_nor_rows(&inputs, n, &LineSet::All).unwrap();
        col_xb.exec_init_cols(&[n], &LineSet::All).unwrap();
        col_xb.exec_nor_cols(&inputs, n, &LineSet::All).unwrap();
        for r in 0..n {
            prop_assert_eq!(row_xb.bit(r, n), col_xb.bit(n, r));
        }
    }

    #[test]
    fn cycle_count_is_operation_count(ops in 1usize..40) {
        let mut xb = Crossbar::new(4, 4);
        xb.set_strict(false);
        for i in 0..ops {
            match i % 3 {
                0 => xb.exec_init_rows(&[3], &LineSet::All).unwrap(),
                1 => xb.exec_nor_rows(&[0, 1], 3, &LineSet::All).unwrap(),
                _ => { xb.exec_read_row(0).unwrap(); }
            }
        }
        prop_assert_eq!(xb.stats().cycles, ops as u64);
    }

    #[test]
    fn bitgrid_diff_is_symmetric_and_exact(
        coords_a in proptest::collection::btree_set((0usize..12, 0usize..70), 0..20),
        coords_b in proptest::collection::btree_set((0usize..12, 0usize..70), 0..20),
    ) {
        let mut a = BitGrid::new(12, 70);
        let mut b = BitGrid::new(12, 70);
        for &(r, c) in &coords_a { a.set(r, c, true); }
        for &(r, c) in &coords_b { b.set(r, c, true); }
        let d1 = a.diff(&b);
        let d2 = b.diff(&a);
        prop_assert_eq!(&d1, &d2);
        let sym: std::collections::BTreeSet<_> =
            coords_a.symmetric_difference(&coords_b).copied().collect();
        let got: std::collections::BTreeSet<_> = d1.into_iter().collect();
        prop_assert_eq!(got, sym);
    }

    #[test]
    fn fault_injection_flip_count_equals_record_count(p in 0.0f64..0.3, seed in 0u64..1000) {
        let mut xb = Crossbar::new(32, 32);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultInjector::new(p).inject(&mut xb, &mut rng);
        prop_assert_eq!(faults.len(), xb.grid().count_ones());
    }

    #[test]
    fn double_injection_with_same_plan_reverts(seed in 0u64..1000) {
        // Flipping the exact same cells twice restores the original state.
        let mut xb = Crossbar::new(16, 16);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = FaultInjector::new(0.2).inject(&mut xb, &mut rng);
        for f in &faults {
            xb.flip_bit(f.row, f.col);
        }
        prop_assert_eq!(xb.grid().count_ones(), 0);
    }
}

// Differential properties: the word-parallel engine must be bit-identical
// to the retained scalar reference — cells, armed flags and statistics —
// including geometries that are not a multiple of 64 wide (slack bits)
// and selections crossing word boundaries.
mod engine_differential {
    use pimecc_xbar::{Crossbar, LineSet, ParallelStep, SimEngine};
    use proptest::prelude::*;

    const DIMS: &[usize] = &[7, 63, 64, 65, 70, 130];

    fn seeded(n: usize, seed: u64, engine: SimEngine) -> Crossbar {
        let mut xb = Crossbar::new(n, n);
        xb.set_engine(engine);
        let mut s = seed | 1;
        for r in 0..n {
            for c in 0..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                xb.write_bit(r, c, s >> 62 & 1 != 0);
            }
        }
        xb
    }

    fn line_set(sel: u8, a: usize, b: usize, n: usize) -> LineSet {
        match sel {
            0 => LineSet::All,
            1 => LineSet::One(a % n),
            2 => {
                let (lo, hi) = ((a % n).min(b % n), (a % n).max(b % n) + 1);
                LineSet::Range(lo..hi)
            }
            _ => LineSet::Explicit(vec![a % n, b % n, (a + b) % n]),
        }
    }

    proptest! {
        #[test]
        fn exec_ops_match_between_engines(
            dim_idx in 0usize..6,
            seed in any::<u64>(),
            ops in proptest::collection::vec(
                (0u8..4, 0usize..10_000, 0usize..10_000, 0usize..10_000, 0u8..4),
                1..12,
            ),
        ) {
            let n = DIMS[dim_idx];
            let mut word = seeded(n, seed, SimEngine::WordParallel);
            let mut scalar = seeded(n, seed, SimEngine::ScalarReference);
            for &(kind, x, y, out, sel) in &ops {
                let out = out % n;
                let fix = |v: usize| if v % n == out { (out + 1) % n } else { v % n };
                let (a, b) = (fix(x), fix(y));
                let sel = line_set(sel, x, y, n);
                for xb in [&mut word, &mut scalar] {
                    match kind {
                        0 => {
                            xb.exec_init_rows(&[out], &sel).unwrap();
                            xb.exec_nor_rows(&[a, b], out, &sel).unwrap();
                        }
                        1 => {
                            xb.exec_init_cols(&[out], &sel).unwrap();
                            xb.exec_nor_cols(&[a, b], out, &sel).unwrap();
                        }
                        2 => xb.exec_init_rows(&[a, b], &sel).unwrap(),
                        _ => xb.exec_init_cols(&[a, b], &sel).unwrap(),
                    }
                }
            }
            prop_assert_eq!(word.grid().diff(scalar.grid()), vec![]);
            prop_assert_eq!(word.stats(), scalar.stats());
            // The armed planes agree too: a NOT of every cell through the
            // same fresh column must behave identically (probing armed
            // state indirectly via strict-mode acceptance).
            let probe = LineSet::All;
            word.exec_init_rows(&[0], &probe).unwrap();
            scalar.exec_init_rows(&[0], &probe).unwrap();
            word.exec_nor_rows(&[1], 0, &probe).unwrap();
            scalar.exec_nor_rows(&[1], 0, &probe).unwrap();
            prop_assert_eq!(word.grid().diff(scalar.grid()), vec![]);
        }

        #[test]
        fn changed_masks_report_exactly_the_flipped_outputs(
            dim_idx in 0usize..6,
            seed in any::<u64>(),
            out in 0usize..10_000,
            a in 0usize..10_000,
        ) {
            let n = DIMS[dim_idx];
            let mut xb = seeded(n, seed, SimEngine::WordParallel);
            let out = out % n;
            let a = if a % n == out { (out + 1) % n } else { a % n };
            xb.exec_init_rows(&[out], &LineSet::All).unwrap();
            let mut changed = Vec::new();
            xb.exec_nor_rows_changed(&[a], out, &LineSet::All, &mut changed).unwrap();
            // The init armed every output at 1; the NOT leaves !bit(a), so
            // the gate's change bit is set exactly where the output is now
            // 0 (it flipped away from the armed 1).
            for r in 0..n {
                let got = changed[r / 64] >> (r % 64) & 1 != 0;
                prop_assert_eq!(got, !xb.bit(r, out), "row {}", r);
            }
        }

        #[test]
        fn fused_steps_match_per_step_crossbar_replay(
            dim_idx in 0usize..6,
            seed in any::<u64>(),
            gates in proptest::collection::vec(
                (0usize..10_000, 0usize..10_000, 0usize..10_000),
                1..10,
            ),
            start in 0usize..10_000,
            len in 1usize..10_000,
        ) {
            let n = DIMS[dim_idx];
            let start = start % n;
            let end = (start + 1 + len % n).min(n);
            let rows = start..end;
            let mut steps = Vec::new();
            for &(x, y, out) in &gates {
                let out = out % n;
                let fix = |v: usize| if v % n == out { (out + 1) % n } else { v % n };
                steps.push(ParallelStep::Init(vec![out]));
                steps.push(ParallelStep::Nor(vec![fix(x), fix(y)], out));
            }
            let mut fused = seeded(n, seed, SimEngine::WordParallel);
            prop_assert!(fused.exec_steps_rows(&steps, rows.clone()).unwrap());
            let mut stepped = seeded(n, seed, SimEngine::WordParallel);
            let sel = LineSet::Range(rows);
            for step in &steps {
                match step {
                    ParallelStep::Init(cells) => stepped.exec_init_rows(cells, &sel).unwrap(),
                    ParallelStep::Nor(ins, out) => {
                        stepped.exec_nor_rows(ins, *out, &sel).unwrap()
                    }
                }
            }
            prop_assert_eq!(fused.grid().diff(stepped.grid()), vec![]);
            prop_assert_eq!(fused.stats(), stepped.stats());
            // Armed planes must agree as well: consume every touched
            // output once more after re-arming it.
            for &(_, _, out) in &gates {
                let out = out % n;
                let sel = LineSet::Range(0..n);
                for xb in [&mut fused, &mut stepped] {
                    xb.exec_init_rows(&[out], &sel).unwrap();
                    xb.exec_nor_rows(&[(out + 1) % n], out, &sel).unwrap();
                }
            }
            prop_assert_eq!(fused.grid().diff(stepped.grid()), vec![]);
        }
    }
}
