//! Drift-plus-refresh soft-error model.
//!
//! The paper's §II-B distinguishes two soft-error populations: *abrupt*
//! upsets (ion strikes, environmental) with a constant rate, and
//! *accumulating* state drift (oxygen-vacancy diffusion) whose hazard
//! grows with time since the cell was last restored. Prior work (Tosson
//! et al., the paper's reference 6) counters drift with periodic refresh; the paper
//! notes refresh "can still be used in conjunction with the mechanism
//! proposed in this paper" — refresh bounds the drift population while the
//! diagonal ECC catches both the abrupt population and the drift tail
//! between refreshes.
//!
//! This module quantifies that combination: it converts a drift hazard
//! with refresh period `t_r` into an *effective* constant SER over the ECC
//! check window, which then feeds the standard [`ReliabilityModel`].

use crate::mttf::ReliabilityModel;
use crate::ser::SoftErrorRate;

/// A two-population soft-error source: constant abrupt rate plus a drift
/// hazard that accumulates as a power law of time since refresh.
///
/// The drift hazard is `h(t) = λ_d · (α+1) · (t/t₀)^α / t₀` scaled so that
/// the expected number of drift faults over one reference period `t₀`
/// equals `λ_d · t₀ / 10⁹` — i.e. `λ_d` is the drift population's average
/// FIT/bit when refreshed every `t₀` hours. `α > 0` makes drift
/// super-linear: refreshing twice as often removes *more* than half the
/// drift faults.
///
/// # Example
///
/// ```
/// use pimecc_reliability::drift::DriftModel;
///
/// let d = DriftModel::new(1e-4, 1e-3, 24.0, 1.0);
/// // Refreshing at the reference period leaves the full drift rate...
/// let slow = d.effective_ser(24.0).fit_per_bit();
/// // ...refreshing 4x more often suppresses drift quadratically (α=1).
/// let fast = d.effective_ser(6.0).fit_per_bit();
/// assert!(fast < slow);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    abrupt_fit: f64,
    drift_fit_at_ref: f64,
    ref_period_hours: f64,
    alpha: f64,
}

impl DriftModel {
    /// Creates a model.
    ///
    /// * `abrupt_fit` — constant abrupt-upset rate (FIT/bit);
    /// * `drift_fit_at_ref` — average drift rate (FIT/bit) when refreshed
    ///   every `ref_period_hours`;
    /// * `alpha` — drift acceleration exponent (0 = drift behaves like a
    ///   constant rate; 1 = hazard grows linearly with time since
    ///   refresh).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite parameters, or a non-positive
    /// reference period.
    pub fn new(abrupt_fit: f64, drift_fit_at_ref: f64, ref_period_hours: f64, alpha: f64) -> Self {
        assert!(
            abrupt_fit.is_finite() && abrupt_fit >= 0.0,
            "abrupt rate must be >= 0"
        );
        assert!(
            drift_fit_at_ref.is_finite() && drift_fit_at_ref >= 0.0,
            "drift rate must be >= 0"
        );
        assert!(
            ref_period_hours.is_finite() && ref_period_hours > 0.0,
            "reference period must be positive"
        );
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        DriftModel {
            abrupt_fit,
            drift_fit_at_ref,
            ref_period_hours,
            alpha,
        }
    }

    /// Average drift FIT/bit when refreshing every `refresh_hours`: the
    /// power-law hazard integrates to
    /// `λ_d · (t_r/t₀)^α` faults per `t_r`-window (normalized per hour).
    pub fn drift_fit(&self, refresh_hours: f64) -> f64 {
        assert!(
            refresh_hours.is_finite() && refresh_hours > 0.0,
            "period must be positive"
        );
        self.drift_fit_at_ref * (refresh_hours / self.ref_period_hours).powf(self.alpha)
    }

    /// The effective constant SER seen by the ECC when refresh runs every
    /// `refresh_hours`.
    pub fn effective_ser(&self, refresh_hours: f64) -> SoftErrorRate {
        SoftErrorRate::from_fit_per_bit(self.abrupt_fit + self.drift_fit(refresh_hours))
    }

    /// The abrupt-population floor that refresh alone can never remove.
    pub fn abrupt_ser(&self) -> SoftErrorRate {
        SoftErrorRate::from_fit_per_bit(self.abrupt_fit)
    }

    /// MTTF of `model`'s memory for four designs at a given refresh
    /// period: `(no protection, refresh only, ECC only, refresh + ECC)`.
    /// "Refresh only" still suffers the abrupt population; "ECC only"
    /// faces the unrefreshed drift rate at the ECC's own check period.
    pub fn mttf_matrix(&self, model: &ReliabilityModel, refresh_hours: f64) -> [f64; 4] {
        let full = self.effective_ser(refresh_hours);
        let unrefreshed = self.effective_ser(model.check_period_hours().max(refresh_hours));
        let bare = model.mttf_hours(model.baseline_failure_probability(unrefreshed));
        let refresh_only = model.mttf_hours(model.baseline_failure_probability(full));
        let ecc_only = model.mttf_hours(model.proposed_failure_probability(unrefreshed));
        let both = model.mttf_hours(model.proposed_failure_probability(full));
        [bare, refresh_only, ecc_only, both]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DriftModel {
        DriftModel::new(1e-4, 1e-3, 24.0, 1.0)
    }

    #[test]
    fn effective_rate_at_reference_period() {
        let d = model();
        let fit = d.effective_ser(24.0).fit_per_bit();
        assert!((fit - 1.1e-3).abs() < 1e-12, "abrupt + drift at t0: {fit}");
    }

    #[test]
    fn faster_refresh_suppresses_drift_superlinearly() {
        let d = model();
        // alpha = 1: halving the period quarters... no — drift_fit scales
        // as (t/t0)^1, so halving the period halves the drift rate.
        let full = d.drift_fit(24.0);
        let half = d.drift_fit(12.0);
        assert!((half - full / 2.0).abs() < 1e-15);
        // With alpha = 2 the same halving cuts drift 4x.
        let d2 = DriftModel::new(0.0, 1e-3, 24.0, 2.0);
        assert!((d2.drift_fit(12.0) - d2.drift_fit(24.0) / 4.0).abs() < 1e-15);
    }

    #[test]
    fn refresh_cannot_beat_the_abrupt_floor() {
        let d = model();
        let tiny = d.effective_ser(1e-3).fit_per_bit();
        assert!(tiny >= d.abrupt_ser().fit_per_bit());
        assert!(tiny < 1.001e-4 + 1e-9);
    }

    #[test]
    fn combined_design_dominates_the_matrix() {
        let d = model();
        let rm = ReliabilityModel::paper().unwrap();
        let [bare, refresh_only, ecc_only, both] = d.mttf_matrix(&rm, 6.0);
        assert!(refresh_only > bare, "refresh helps the baseline");
        assert!(ecc_only > bare, "ECC helps the baseline");
        assert!(both > refresh_only, "ECC adds on top of refresh");
        assert!(both > ecc_only, "refresh adds on top of ECC");
    }

    #[test]
    fn alpha_zero_makes_refresh_useless() {
        let d = DriftModel::new(1e-4, 1e-3, 24.0, 0.0);
        assert_eq!(d.drift_fit(1.0), d.drift_fit(24.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = model().drift_fit(0.0);
    }
}
