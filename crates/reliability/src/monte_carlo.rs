//! Monte-Carlo fault injection: validates the closed-form reliability
//! model against the *executable* ECC machine.
//!
//! Two levels are provided:
//!
//! * **Block-level trials** ([`MonteCarlo::block_failure_rate`]): sample
//!   Bernoulli faults over a block's bits, run the actual
//!   [`DiagonalCode`] decoder, and count windows where correction fails.
//!   This validates the binomial zero-or-one-error closed form *and* the
//!   decoder together.
//! * **Machine-level trials** ([`MonteCarlo::machine_trial`]): inject
//!   faults into a full [`ProtectedMemory`], run `check_all`, and verify
//!   that data is restored whenever no block took two hits.
//!
//! Trials fan out over threads with `std::thread::scope`.

use crate::mttf::ReliabilityModel;
use crate::ser::SoftErrorRate;
use pimecc_core::{BlockGeometry, DiagonalCode, ErrorLocation, ProtectedMemory};
use pimecc_xbar::{BitGrid, FaultInjector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a single block trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTrialOutcome {
    /// No fault landed; nothing to do.
    Clean,
    /// Exactly one fault landed and the decoder repaired it.
    Corrected,
    /// Two or more faults landed; the decoder flagged or mis-handled them
    /// (either way the block failed, matching the analytical model).
    Failed,
}

/// Aggregated Monte-Carlo estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Number of trials run.
    pub trials: u64,
    /// Trials in which the block (or memory) failed.
    pub failures: u64,
    /// Point estimate of the failure probability.
    pub estimate: f64,
    /// Approximate 95% confidence half-width (normal approximation).
    pub confidence_95: f64,
}

impl MonteCarloResult {
    fn from_counts(trials: u64, failures: u64) -> Self {
        let p = failures as f64 / trials as f64;
        let half = 1.96 * (p * (1.0 - p) / trials as f64).sqrt();
        MonteCarloResult {
            trials,
            failures,
            estimate: p,
            confidence_95: half,
        }
    }

    /// Whether `value` falls within the 95% confidence interval (padded by
    /// a small absolute floor for near-zero estimates).
    pub fn contains(&self, value: f64) -> bool {
        let pad = self.confidence_95.max(3.0 / self.trials as f64);
        (self.estimate - value).abs() <= pad
    }
}

/// The Monte-Carlo engine.
///
/// # Example
///
/// ```
/// use pimecc_reliability::{MonteCarlo, ReliabilityModel, SoftErrorRate};
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let model = ReliabilityModel::paper()?;
/// let mc = MonteCarlo::new(42);
/// // A very high SER so failures are observable with few trials:
/// let ser = SoftErrorRate::from_fit_per_bit(5.0e4);
/// let result = mc.block_failure_rate(&model, ser, 2_000, 4);
/// assert!(result.contains(model.block_failure_probability(ser)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    seed: u64,
}

impl MonteCarlo {
    /// Creates an engine with a base seed (trials derive per-thread seeds).
    pub fn new(seed: u64) -> Self {
        MonteCarlo { seed }
    }

    /// Runs one block-level trial: random data, Bernoulli faults at the
    /// window flip probability, decode, classify.
    pub fn block_trial(
        &self,
        geom: &BlockGeometry,
        flip_p: f64,
        rng: &mut StdRng,
    ) -> BlockTrialOutcome {
        let m = geom.m();
        let block_geom = BlockGeometry::new(m, m).expect("block geometry");
        let code = DiagonalCode::new(block_geom);
        let mut block = BitGrid::new(m, m);
        for r in 0..m {
            for c in 0..m {
                block.set(r, c, rng.gen());
            }
        }
        let (mut lead, mut counter) = code.encode(&block);
        let reference = block.clone();
        let injector = FaultInjector::new(flip_p);
        let positions = injector.sample_flip_positions(m * m, rng);
        if positions.is_empty() {
            return BlockTrialOutcome::Clean;
        }
        for &i in &positions {
            block.flip(i / m, i % m);
        }
        let loc = code.correct(&mut block, &mut lead, &mut counter);
        let repaired = block.diff(&reference).is_empty();
        match (positions.len(), loc, repaired) {
            (1, ErrorLocation::Data { .. }, true) => BlockTrialOutcome::Corrected,
            (1, _, _) => BlockTrialOutcome::Failed, // decoder bug guard
            _ => BlockTrialOutcome::Failed,
        }
    }

    /// Estimates the per-block window failure probability at `ser` with
    /// `trials` trials across `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `trials` or `threads` is zero.
    pub fn block_failure_rate(
        &self,
        model: &ReliabilityModel,
        ser: SoftErrorRate,
        trials: u64,
        threads: usize,
    ) -> MonteCarloResult {
        assert!(
            trials > 0 && threads > 0,
            "trials and threads must be positive"
        );
        let flip_p = ser.flip_probability(model.check_period_hours());
        let geom = *model.geometry();
        let per_thread = trials.div_ceil(threads as u64);
        let mut failures = 0u64;
        let mut total = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let engine = *self;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(
                            engine.seed.wrapping_add(0x9E37 * (t as u64 + 1)),
                        );
                        let mut fails = 0u64;
                        for _ in 0..per_thread {
                            if engine.block_trial(&geom, flip_p, &mut rng)
                                == BlockTrialOutcome::Failed
                            {
                                fails += 1;
                            }
                        }
                        (per_thread, fails)
                    })
                })
                .collect();
            for h in handles {
                let (t, f) = h.join().expect("worker panicked");
                total += t;
                failures += f;
            }
        });
        MonteCarloResult::from_counts(total, failures)
    }

    /// One machine-level trial on a small protected memory: inject
    /// Bernoulli faults everywhere, run the periodic check, and report
    /// whether the memory window "failed" (any block kept a wrong value).
    ///
    /// Returns `(failed, faults_injected)`.
    pub fn machine_trial(
        &self,
        geom: BlockGeometry,
        flip_p: f64,
        rng: &mut StdRng,
    ) -> (bool, usize) {
        let mut pm = ProtectedMemory::new(geom).expect("machine");
        let n = geom.n();
        let mut data = BitGrid::new(n, n);
        for r in 0..n {
            for c in 0..n {
                data.set(r, c, rng.gen());
            }
        }
        pm.load_grid(&data);
        let injector = FaultInjector::new(flip_p);
        let positions = injector.sample_flip_positions(n * n, rng);
        for &i in &positions {
            pm.inject_fault(i / n, i % n);
        }
        pm.check_all().expect("check");
        // Failure = any residual data difference after correction.
        let failed = (0..n).any(|r| (0..n).any(|c| pm.bit(r, c) != data.get(r, c)));
        (failed, positions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trials_at_zero_probability() {
        let geom = BlockGeometry::new(15, 15).unwrap();
        let mc = MonteCarlo::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_eq!(
                mc.block_trial(&geom, 0.0, &mut rng),
                BlockTrialOutcome::Clean
            );
        }
    }

    #[test]
    fn single_faults_are_always_corrected() {
        // Probability chosen so most non-clean trials have one fault;
        // every single-fault trial must be Corrected, never Failed.
        let geom = BlockGeometry::new(15, 15).unwrap();
        let mc = MonteCarlo::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut corrected = 0;
        for _ in 0..500 {
            match mc.block_trial(&geom, 0.002, &mut rng) {
                BlockTrialOutcome::Corrected => corrected += 1,
                BlockTrialOutcome::Failed => {
                    // With p=0.002 over 225 bits, double faults do occur
                    // (~4% of non-clean trials); only panic if Failed
                    // dominates, which would indicate a decoder bug.
                }
                BlockTrialOutcome::Clean => {}
            }
        }
        assert!(
            corrected > 50,
            "expected many corrected singles, got {corrected}"
        );
    }

    #[test]
    fn estimate_matches_closed_form_at_high_ser() {
        let model = ReliabilityModel::paper().unwrap();
        let ser = SoftErrorRate::from_fit_per_bit(1e5);
        let mc = MonteCarlo::new(7);
        let result = mc.block_failure_rate(&model, ser, 4_000, 4);
        let analytical = model.block_failure_probability(ser);
        assert!(
            result.contains(analytical),
            "MC {} ± {} vs analytical {}",
            result.estimate,
            result.confidence_95,
            analytical
        );
    }

    #[test]
    fn machine_trial_restores_data_under_sparse_faults() {
        let geom = BlockGeometry::new(15, 5).unwrap();
        let mc = MonteCarlo::new(11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut observed_faulty_window = false;
        for _ in 0..30 {
            let (failed, faults) = mc.machine_trial(geom, 0.003, &mut rng);
            if faults > 0 {
                observed_faulty_window = true;
            }
            // With 9 blocks of 25 bits, double-hits are rare; when all
            // blocks took <= 1 fault the machine must fully restore data.
            if !failed {
                continue;
            }
            assert!(
                faults >= 2,
                "a failure requires at least two faults, got {faults}"
            );
        }
        assert!(observed_faulty_window, "test should exercise faults");
    }

    #[test]
    fn confidence_interval_behaviour() {
        let r = MonteCarloResult::from_counts(10_000, 100);
        assert!((r.estimate - 0.01).abs() < 1e-12);
        assert!(r.contains(0.0105));
        assert!(!r.contains(0.05));
    }

    #[test]
    fn parallel_and_serial_runs_agree_statistically() {
        let model = ReliabilityModel::paper().unwrap();
        let ser = SoftErrorRate::from_fit_per_bit(2e5);
        let mc = MonteCarlo::new(21);
        let a = mc.block_failure_rate(&model, ser, 2_000, 1);
        let b = mc.block_failure_rate(&model, ser, 2_000, 4);
        assert!((a.estimate - b.estimate).abs() < a.confidence_95 + b.confidence_95 + 0.02);
    }
}
