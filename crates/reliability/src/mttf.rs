//! The closed-form MTTF model of the paper's Figure 6 sensitivity
//! analysis.
//!
//! All probability accumulation happens in log space: at the low-SER end
//! of the sweep the memory failure probability is ~10⁻¹⁴ per window, which
//! would vanish in direct products.

use crate::ser::SoftErrorRate;
use pimecc_core::BlockGeometry;

/// One point of the Figure 6 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttfPoint {
    /// Memristor soft error rate.
    pub ser: SoftErrorRate,
    /// Baseline (no ECC) memory MTTF in hours.
    pub baseline_mttf_hours: f64,
    /// Proposed diagonal-ECC memory MTTF in hours.
    pub proposed_mttf_hours: f64,
}

impl MttfPoint {
    /// MTTF improvement factor of the proposed scheme.
    pub fn improvement(&self) -> f64 {
        self.proposed_mttf_hours / self.baseline_mttf_hours
    }
}

/// The paper's reliability model: a memory of `capacity_bits` built from
/// n×n crossbars with per-block single-error correction, fully checked
/// every `check_period_hours`.
///
/// # Example
///
/// ```
/// use pimecc_reliability::{ReliabilityModel, SoftErrorRate};
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let model = ReliabilityModel::paper()?;
/// let point = model.point(SoftErrorRate::flash_like());
/// assert!(point.improvement() > 3.0e8); // the paper's headline
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityModel {
    geom: BlockGeometry,
    capacity_bits: u64,
    check_period_hours: f64,
    include_check_bits: bool,
}

impl ReliabilityModel {
    /// Builds a model.
    ///
    /// `include_check_bits` decides whether the 2m check-bit memristors of
    /// each block are themselves counted as error sites (physically true;
    /// the paper's §V-A analysis counts only the m² data bits, which is the
    /// default here for fidelity — the difference is under 15%).
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bits` is zero or `check_period_hours` is not
    /// positive.
    pub fn new(
        geom: BlockGeometry,
        capacity_bits: u64,
        check_period_hours: f64,
        include_check_bits: bool,
    ) -> Self {
        assert!(capacity_bits > 0, "capacity must be positive");
        assert!(
            check_period_hours.is_finite() && check_period_hours > 0.0,
            "check period must be positive"
        );
        ReliabilityModel {
            geom,
            capacity_bits,
            check_period_hours,
            include_check_bits,
        }
    }

    /// The paper's configuration: 1 GB memory, n = 1020, m = 15, T = 24 h,
    /// data-bits-only blocks.
    ///
    /// # Errors
    ///
    /// Never in practice; mirrors [`BlockGeometry::new`].
    pub fn paper() -> pimecc_core::Result<Self> {
        Ok(Self::new(
            BlockGeometry::new(1020, 15)?,
            8 * (1 << 30),
            24.0,
            false,
        ))
    }

    /// Returns a copy that counts check-bit memristors as error sites.
    pub fn with_check_bits_counted(mut self) -> Self {
        self.include_check_bits = true;
        self
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// The ECC check period `T` in hours.
    pub fn check_period_hours(&self) -> f64 {
        self.check_period_hours
    }

    /// Number of n×n crossbars forming the memory (rounded up).
    pub fn crossbar_count(&self) -> u64 {
        let per = (self.geom.n() * self.geom.n()) as u64;
        self.capacity_bits.div_ceil(per)
    }

    /// Total number of m×m blocks across the memory.
    pub fn block_count(&self) -> u64 {
        self.crossbar_count() * self.geom.block_count() as u64
    }

    /// Error sites per block under the configured counting rule.
    pub fn bits_per_block(&self) -> u64 {
        let m = self.geom.m() as u64;
        if self.include_check_bits {
            m * m + 2 * m
        } else {
            m * m
        }
    }

    /// `ln P(block has ≤ 1 error)` for per-bit probability `p` — the
    /// binomial zero-or-one-error term, computed stably.
    fn ln_block_success(&self, p: f64) -> f64 {
        let b = self.bits_per_block() as f64;
        if p == 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return f64::NEG_INFINITY;
        }
        // P = (1-p)^B + B·p·(1-p)^(B-1) = (1-p)^(B-1) · (1 + (B-1)·p).
        // Both factors go through ln_1p so the ~p² net effect survives the
        // cancellation between the two ~(B·p)-sized terms.
        let q = b - 1.0;
        q * (-p).ln_1p() + (q * p).ln_1p()
    }

    /// Failure probability of the whole memory within one check window,
    /// with the proposed per-block SEC ECC.
    pub fn proposed_failure_probability(&self, ser: SoftErrorRate) -> f64 {
        let p = ser.flip_probability(self.check_period_hours);
        let ln_success = self.block_count() as f64 * self.ln_block_success(p);
        -ln_success.exp_m1()
    }

    /// Failure probability of the baseline (no ECC) memory within one
    /// window: any flipped bit is silent data corruption.
    pub fn baseline_failure_probability(&self, ser: SoftErrorRate) -> f64 {
        let p = ser.flip_probability(self.check_period_hours);
        if p >= 1.0 {
            return 1.0;
        }
        let ln_success = self.capacity_bits as f64 * (-p).ln_1p();
        -ln_success.exp_m1()
    }

    /// Converts a window failure probability to MTTF in hours
    /// (`MTTF = T / P`, equivalently `10⁹ / FIT`).
    pub fn mttf_hours(&self, failure_probability: f64) -> f64 {
        self.check_period_hours / failure_probability
    }

    /// Memory failure rate in FIT (`P · 10⁹ / T`).
    pub fn failure_rate_fit(&self, failure_probability: f64) -> f64 {
        failure_probability * 1e9 / self.check_period_hours
    }

    /// Computes one Figure 6 point.
    pub fn point(&self, ser: SoftErrorRate) -> MttfPoint {
        MttfPoint {
            ser,
            baseline_mttf_hours: self.mttf_hours(self.baseline_failure_probability(ser)),
            proposed_mttf_hours: self.mttf_hours(self.proposed_failure_probability(ser)),
        }
    }

    /// MTTF improvement factor at `ser`.
    pub fn improvement(&self, ser: SoftErrorRate) -> f64 {
        self.point(ser).improvement()
    }

    /// The full Figure 6 sweep.
    pub fn sensitivity(&self, points_per_decade: usize) -> Vec<MttfPoint> {
        SoftErrorRate::figure6_sweep(points_per_decade)
            .into_iter()
            .map(|s| self.point(s))
            .collect()
    }

    /// Analytical probability that a *single block* fails (≥ 2 errors) in
    /// one window — the quantity the Monte-Carlo engine validates.
    pub fn block_failure_probability(&self, ser: SoftErrorRate) -> f64 {
        let p = ser.flip_probability(self.check_period_hours);
        -self.ln_block_success(p).exp_m1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReliabilityModel {
        ReliabilityModel::paper().unwrap()
    }

    #[test]
    fn paper_configuration_counts() {
        let m = model();
        // 1 GB / (1020*1020) bits per crossbar = 8256 crossbars.
        assert_eq!(m.crossbar_count(), 8257);
        assert_eq!(m.block_count(), 8257 * 68 * 68);
        assert_eq!(m.bits_per_block(), 225);
        assert_eq!(m.with_check_bits_counted().bits_per_block(), 255);
    }

    #[test]
    fn headline_improvement_exceeds_3e8_at_flash_ser() {
        // Paper §V-A: "for a memristor SER of 1e-3 FIT/bit ... improvement
        // in MTTF by a factor of over 3e8".
        let gain = model().improvement(SoftErrorRate::flash_like());
        assert!(gain > 3.0e8, "got {gain:.3e}");
        assert!(gain < 3.0e9, "sanity upper bound, got {gain:.3e}");
    }

    #[test]
    fn improvement_is_over_eight_orders_of_magnitude_in_the_flat_region() {
        // Paper abstract: "over eight orders of magnitude" improvement.
        let gain = model().improvement(SoftErrorRate::from_fit_per_bit(1e-4));
        assert!(gain > 1.0e8, "got {gain:.3e}");
    }

    #[test]
    fn baseline_mttf_at_flash_ser_is_days_scale() {
        let m = model();
        let p = m.baseline_failure_probability(SoftErrorRate::flash_like());
        let mttf = m.mttf_hours(p);
        // ~0.2 expected flips per day over 8.6e9 bits -> MTTF ~ 100-150 h.
        assert!(mttf > 50.0 && mttf < 500.0, "got {mttf}");
    }

    #[test]
    fn curves_decrease_monotonically_with_ser() {
        // Non-increasing everywhere; strictly decreasing until both curves
        // saturate at MTTF = T (every window fails).
        let pts = model().sensitivity(2);
        for w in pts.windows(2) {
            assert!(w[1].baseline_mttf_hours <= w[0].baseline_mttf_hours);
            assert!(w[1].proposed_mttf_hours <= w[0].proposed_mttf_hours);
            if w[0].ser.fit_per_bit() < 1.0 {
                assert!(w[1].proposed_mttf_hours < w[0].proposed_mttf_hours);
            }
        }
    }

    #[test]
    fn proposed_always_beats_baseline() {
        for p in model().sensitivity(2) {
            assert!(
                p.proposed_mttf_hours >= p.baseline_mttf_hours,
                "at {}: {p:?}",
                p.ser
            );
            // Strictly better until the saturation plateau.
            if p.ser.fit_per_bit() < 1e2 {
                assert!(p.improvement() > 1.0, "at {}: {p:?}", p.ser);
            }
        }
    }

    #[test]
    fn improvement_shrinks_at_extreme_ser() {
        // With ~1 error per block per window the SEC code saturates.
        let m = model();
        let low = m.improvement(SoftErrorRate::from_fit_per_bit(1e-3));
        let high = m.improvement(SoftErrorRate::from_fit_per_bit(1e3));
        assert!(low / high > 1e3, "low {low:.3e} vs high {high:.3e}");
    }

    #[test]
    fn counting_check_bits_degrades_proposed_slightly() {
        let without = model();
        let with = model().with_check_bits_counted();
        let s = SoftErrorRate::flash_like();
        let a = without.proposed_failure_probability(s);
        let b = with.proposed_failure_probability(s);
        assert!(b > a, "more error sites, more failures");
        assert!(b / a < 1.5, "but under ~30%: {}", b / a);
    }

    #[test]
    fn failure_rate_fit_roundtrip() {
        let m = model();
        let p = 1e-6;
        let fit = m.failure_rate_fit(p);
        assert!((1e9 / fit - m.mttf_hours(p)).abs() / m.mttf_hours(p) < 1e-12);
    }

    #[test]
    fn log_space_is_stable_at_the_sweep_extremes() {
        let m = model();
        let tiny = m.proposed_failure_probability(SoftErrorRate::from_fit_per_bit(1e-5));
        assert!(tiny > 0.0, "must not underflow to zero");
        assert!(tiny < 1e-10);
        let huge = m.proposed_failure_probability(SoftErrorRate::from_fit_per_bit(1e3));
        assert!(huge > 0.0 && huge <= 1.0);
    }

    #[test]
    fn block_failure_probability_matches_direct_binomial_at_moderate_p() {
        let m = model();
        // Pick an SER where p is large enough that the naive formula keeps
        // ~6 significant digits through its cancellation.
        let ser = SoftErrorRate::from_fit_per_bit(1e4);
        let p = ser.flip_probability(24.0);
        let b = 225.0f64;
        let direct = 1.0 - ((1.0 - p).powf(b) + b * p * (1.0 - p).powf(b - 1.0));
        let ln_based = m.block_failure_probability(ser);
        assert!(
            (direct - ln_based).abs() / direct < 1e-6,
            "{direct} vs {ln_based}"
        );
    }
}
