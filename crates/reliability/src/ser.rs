//! The soft-error-rate abstraction: FIT/bit and its conversion to per-bit
//! flip probabilities over an exposure window.

/// A memristor soft error rate in FIT per bit (failures per 10⁹
/// device-hours).
///
/// # Example
///
/// ```
/// use pimecc_reliability::SoftErrorRate;
///
/// let ser = SoftErrorRate::flash_like(); // ~1e-3 FIT/bit, paper's anchor
/// let p = ser.flip_probability(24.0);
/// assert!(p > 0.0 && p < 1e-10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SoftErrorRate {
    fit_per_bit: f64,
}

impl SoftErrorRate {
    /// Creates a rate from FIT/bit.
    ///
    /// # Panics
    ///
    /// Panics if `fit` is negative or non-finite.
    pub fn from_fit_per_bit(fit: f64) -> Self {
        assert!(
            fit.is_finite() && fit >= 0.0,
            "FIT rate must be non-negative, got {fit}"
        );
        SoftErrorRate { fit_per_bit: fit }
    }

    /// The paper's reference point: Flash-memory-like SER of 10⁻³ FIT/bit.
    pub fn flash_like() -> Self {
        Self::from_fit_per_bit(1e-3)
    }

    /// The rate in FIT/bit.
    pub fn fit_per_bit(&self) -> f64 {
        self.fit_per_bit
    }

    /// Probability that one specific bit flips within `hours` hours:
    /// `1 − exp(−λ·hours/10⁹)` (exponential arrival model).
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or non-finite.
    pub fn flip_probability(&self, hours: f64) -> f64 {
        assert!(
            hours.is_finite() && hours >= 0.0,
            "window must be non-negative"
        );
        -(-self.fit_per_bit * hours / 1e9).exp_m1()
    }

    /// Inverse of [`SoftErrorRate::flip_probability`]: the exposure window
    /// (in hours) over which one specific bit flips with probability `p` —
    /// `h = −ln(1−p)·10⁹/λ`. This is how an online scrub scheduler picks
    /// its check period: choose the per-bit flip probability the ECC
    /// should face between checks, invert, and scrub that often.
    ///
    /// A zero rate never flips: the window is `f64::INFINITY`.
    ///
    /// # Example
    ///
    /// ```
    /// use pimecc_reliability::SoftErrorRate;
    ///
    /// let ser = SoftErrorRate::flash_like();
    /// let hours = ser.exposure_window_for(2.4e-11);
    /// assert!((hours - 24.0).abs() < 1e-6, "the paper's daily check");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn exposure_window_for(&self, p: f64) -> f64 {
        assert!(
            p.is_finite() && (0.0..1.0).contains(&p),
            "flip probability must be in [0, 1), got {p}"
        );
        if self.fit_per_bit == 0.0 {
            return f64::INFINITY;
        }
        // ln_1p keeps precision for tiny p, where (1 - p) would round —
        // the exact inverse of flip_probability's exp_m1.
        -(-p).ln_1p() * 1e9 / self.fit_per_bit
    }

    /// The logarithmically spaced sweep of the paper's Figure 6 x-axis:
    /// `10^-5 .. 10^3` FIT/bit, `points_per_decade` samples per decade.
    ///
    /// # Panics
    ///
    /// Panics if `points_per_decade` is zero.
    pub fn figure6_sweep(points_per_decade: usize) -> Vec<SoftErrorRate> {
        assert!(points_per_decade > 0, "need at least one point per decade");
        let decades = 8; // -5 ..= 3
        let total = decades * points_per_decade;
        (0..=total)
            .map(|i| {
                let exp = -5.0 + i as f64 / points_per_decade as f64;
                SoftErrorRate::from_fit_per_bit(10f64.powf(exp))
            })
            .collect()
    }
}

impl std::fmt::Display for SoftErrorRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e} FIT/bit", self.fit_per_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_flips() {
        let ser = SoftErrorRate::from_fit_per_bit(0.0);
        assert_eq!(ser.flip_probability(1e6), 0.0);
        assert_eq!(ser.exposure_window_for(1e-9), f64::INFINITY);
    }

    #[test]
    fn exposure_window_inverts_flip_probability() {
        for fit in [1e-5, 1e-3, 1.0, 1e3] {
            let ser = SoftErrorRate::from_fit_per_bit(fit);
            for p in [1e-15, 1e-11, 1e-6, 0.5] {
                let hours = ser.exposure_window_for(p);
                let back = ser.flip_probability(hours);
                assert!(
                    (back - p).abs() / p < 1e-9,
                    "fit={fit} p={p} hours={hours} back={back}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn exposure_window_rejects_certainty() {
        let _ = SoftErrorRate::flash_like().exposure_window_for(1.0);
    }

    #[test]
    fn probability_matches_linear_approximation_for_tiny_rates() {
        // p ≈ λT/1e9 for small arguments.
        let ser = SoftErrorRate::from_fit_per_bit(1e-3);
        let p = ser.flip_probability(24.0);
        let approx = 1e-3 * 24.0 / 1e9;
        assert!((p - approx).abs() / approx < 1e-6, "p={p}, approx={approx}");
    }

    #[test]
    fn probability_saturates_for_huge_rates() {
        let ser = SoftErrorRate::from_fit_per_bit(1e12);
        let p = ser.flip_probability(1e6);
        assert!(p > 0.999999);
        assert!(p <= 1.0);
    }

    #[test]
    fn probability_is_monotone_in_rate_and_time() {
        let lo = SoftErrorRate::from_fit_per_bit(1e-3).flip_probability(24.0);
        let hi = SoftErrorRate::from_fit_per_bit(1e-2).flip_probability(24.0);
        assert!(hi > lo);
        let longer = SoftErrorRate::from_fit_per_bit(1e-3).flip_probability(240.0);
        assert!(longer > lo);
    }

    #[test]
    fn figure6_sweep_spans_the_paper_axis() {
        let sweep = SoftErrorRate::figure6_sweep(4);
        assert_eq!(sweep.len(), 33);
        assert!((sweep[0].fit_per_bit() - 1e-5).abs() / 1e-5 < 1e-9);
        assert!((sweep.last().unwrap().fit_per_bit() - 1e3).abs() / 1e3 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = SoftErrorRate::from_fit_per_bit(-1.0);
    }

    #[test]
    fn display_format() {
        assert!(SoftErrorRate::flash_like().to_string().contains("FIT/bit"));
    }
}
