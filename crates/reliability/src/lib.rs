//! Reliability analytics for the diagonal-ECC mechanism: the soft-error
//! model, the closed-form MTTF sensitivity analysis behind the paper's
//! Figure 6, and a Monte-Carlo fault-injection engine that cross-validates
//! the closed form against the executable machine.
//!
//! # Model (paper §V-A)
//!
//! Memristor soft errors are uniform, independent, with a constant soft
//! error rate λ in FIT/bit (1 FIT = one failure per 10⁹ device-hours).
//! Full-memory ECC checks run every `T` hours, so the worst-case exposure
//! window of any bit is `T`; the per-bit flip probability within a window
//! is `p = 1 − exp(−λT/10⁹)`.
//!
//! *Baseline* (no ECC): the memory fails if **any** bit flips.
//! *Proposed*: each m×m block corrects one error, so a block fails only
//! with ≥ 2 flips; blocks and crossbars are independent.
//! `MTTF = T / P(failure in T)` in hours (equivalently `10⁹ / FIT`).
//!
//! # Example
//!
//! ```
//! use pimecc_reliability::{ReliabilityModel, SoftErrorRate};
//!
//! # fn main() -> Result<(), pimecc_core::CoreError> {
//! let model = ReliabilityModel::paper()?; // 1 GB, n=1020, m=15, T=24h
//! let flash = SoftErrorRate::from_fit_per_bit(1e-3);
//! let gain = model.improvement(flash);
//! assert!(gain > 3.0e8, "paper: over 3e8, got {gain:.3e}");
//! # Ok(())
//! # }
//! ```

pub mod drift;
pub mod monte_carlo;
pub mod mttf;
pub mod ser;

pub use drift::DriftModel;
pub use monte_carlo::{BlockTrialOutcome, MonteCarlo, MonteCarloResult};
pub use mttf::{MttfPoint, ReliabilityModel};
pub use ser::SoftErrorRate;
