//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in containers without network access or a crates.io
//! mirror, so the external `rand` dependency is replaced by this in-tree
//! crate exposing the small API subset the workspace uses: [`Rng`] (with
//! `gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation workloads, deterministic for a given seed, but NOT
//! stream-compatible with the real `rand::rngs::StdRng` (ChaCha12). Seeded
//! test pins in this workspace are therefore pinned against *this*
//! implementation.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] (the stand-in
/// for `rand`'s `Standard` distribution).
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (the stand-in for `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is negligible for the simulation spans used
                // here (far below 2^48).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::random(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// User-facing sampling interface, blanket-implemented for every bit
/// source.
pub trait Rng: RngCore {
    /// Draws one uniform value of an inferable type.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the conventional xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(6);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((ones as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }
}
