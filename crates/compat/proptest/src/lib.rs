//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace builds without network access, so this in-tree crate
//! provides the subset of the proptest API its test suites use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! [`any`], [`Just`], [`prop_oneof!`], range strategies, tuple strategies
//! and the [`collection`] module (`vec`, `btree_set`).
//!
//! Semantic differences from real proptest, deliberate for size:
//!
//! * cases are sampled from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so failures reproduce across runs;
//! * there is **no shrinking** — a failing case panics with the assert's
//!   own message;
//! * `prop_assert!`/`prop_assert_eq!` forward to `assert!`/`assert_eq!`.

use rand::rngs::StdRng;
use rand::{Random, Rng, SampleRange, SeedableRng};
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256, sized for simulation-heavy
    /// properties.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one property, derived from its fully qualified
/// name so every test draws an independent, reproducible stream.
pub fn seeded_rng(test_path: &str) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_path.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice among equally weighted alternatives (see
/// [`prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over `alternatives`.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy behind [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Random> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Uniform values of the whole domain of `T`.
pub fn any<T: Random>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// Collection strategies (subset: `vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Number-of-elements specification: an exact `usize` or a half-open
    /// `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            // Duplicates shrink the set below the drawn length; proptest
            // retries, this stand-in accepts the smaller set.
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `elem` with *up to* `size` elements.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// Defines property tests: each function runs `config.cases` times with
/// fresh samples of its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::seeded_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Boolean property assertion (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality property assertion (no shrinking: forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_collections_sample_in_bounds() {
        let mut rng = crate::seeded_rng("self_test");
        let s = (0usize..10, crate::any::<bool>());
        for _ in 0..100 {
            let (n, _b) = crate::Strategy::sample(&s, &mut rng);
            assert!(n < 10);
        }
        let v = crate::collection::vec(crate::any::<u8>(), 3..7);
        for _ in 0..50 {
            let got = crate::Strategy::sample(&v, &mut rng);
            assert!((3..7).contains(&got.len()));
        }
        let set = crate::collection::btree_set((0usize..4, 0usize..4), 0..20);
        for _ in 0..50 {
            let got = crate::Strategy::sample(&set, &mut rng);
            assert!(got.len() <= 16);
        }
    }

    #[test]
    fn map_flat_map_and_oneof_compose() {
        let mut rng = crate::seeded_rng("compose");
        let s = prop_oneof![Just(3usize), Just(5), Just(7)]
            .prop_flat_map(|m| (Just(m), 1usize..4))
            .prop_map(|(m, k)| m * k);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((3..=21).contains(&v));
            assert!([3, 5, 7].iter().any(|f| v % f == 0));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..50, (a, b) in (any::<bool>(), 0u64..9)) {
            prop_assert!(x < 50);
            prop_assert!(b < 9);
            prop_assert_eq!(a, a);
        }
    }
}
