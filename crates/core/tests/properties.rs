//! Property-based tests for the diagonal ECC core: single-error correction
//! must be exact for *any* data pattern, any geometry, any error position;
//! consistency must survive arbitrary operation sequences.

use pimecc_core::shifter::{align_line, scatter_line, Axis, Family};
use pimecc_core::{BlockGeometry, DiagonalCode, ErrorLocation, ProtectedMemory};
use pimecc_xbar::{BitGrid, LineSet};
use proptest::prelude::*;

/// Arbitrary valid geometry: odd m in {3,5,7,9}, n a small multiple of m.
fn geometry_strategy() -> impl Strategy<Value = BlockGeometry> {
    (
        prop_oneof![Just(3usize), Just(5), Just(7), Just(9)],
        1usize..4,
    )
        .prop_map(|(m, mult)| BlockGeometry::new(m * mult, m).expect("valid by construction"))
}

fn grid_strategy(n: usize) -> impl Strategy<Value = BitGrid> {
    proptest::collection::vec(any::<bool>(), n * n).prop_map(move |bits| {
        let mut g = BitGrid::new(n, n);
        for r in 0..n {
            for c in 0..n {
                g.set(r, c, bits[r * n + c]);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_single_data_error_is_exactly_corrected(
        geom in geometry_strategy(),
        seed in any::<u64>(),
        err_pos in (0usize..10_000, 0usize..10_000),
    ) {
        let m = geom.m();
        let code = DiagonalCode::new(BlockGeometry::new(m, m).expect("block geom"));
        // Random m×m block from the seed.
        let mut block = BitGrid::new(m, m);
        let mut s = seed | 1;
        for r in 0..m {
            for c in 0..m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                block.set(r, c, s >> 63 != 0);
            }
        }
        let (mut lead, mut counter) = code.encode(&block);
        let (er, ec) = (err_pos.0 % m, err_pos.1 % m);
        let reference = block.clone();
        block.flip(er, ec);
        let loc = code.correct(&mut block, &mut lead, &mut counter);
        prop_assert_eq!(loc, ErrorLocation::Data { local_row: er, local_col: ec });
        prop_assert_eq!(block.diff(&reference), vec![]);
    }

    #[test]
    fn shifter_roundtrip_any_line(
        geom in geometry_strategy(),
        seed in any::<u64>(),
        fixed in 0usize..9,
    ) {
        let n = geom.n();
        let fixed = fixed % geom.m();
        let mut line = vec![false; n];
        let mut s = seed | 1;
        for b in line.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = s >> 63 != 0;
        }
        for family in [Family::Leading, Family::Counter] {
            for axis in [Axis::Row, Axis::Col] {
                let lanes = align_line(&line, fixed, &geom, family, axis);
                prop_assert_eq!(scatter_line(&lanes, fixed, &geom, family, axis), line.clone());
            }
        }
    }

    #[test]
    fn machine_consistency_survives_random_op_sequences(
        grid_and_ops in (geometry_strategy()).prop_flat_map(|geom| {
            let n = geom.n();
            (
                Just(geom),
                grid_strategy(n),
                proptest::collection::vec((0usize..100, 0usize..100, 0usize..100), 1..12),
            )
        })
    ) {
        let (geom, grid, ops) = grid_and_ops;
        let n = geom.n();
        let mut pm = ProtectedMemory::new(geom).expect("machine");
        pm.load_grid(&grid);
        for (a, b, o) in ops {
            let (ia, ib, out) = (a % n, b % n, o % n);
            if ia == out || ib == out {
                continue;
            }
            if a % 2 == 0 {
                pm.exec_init_rows(&[out], &LineSet::All).expect("init");
                pm.exec_nor_rows(&[ia, ib], out, &LineSet::All).expect("nor");
            } else {
                pm.exec_init_cols(&[out], &LineSet::All).expect("init");
                pm.exec_nor_cols(&[ia, ib], out, &LineSet::All).expect("nor");
            }
            prop_assert!(pm.verify_consistency().is_ok());
        }
    }

    #[test]
    fn machine_corrects_any_single_fault_after_ops(
        geom in geometry_strategy(),
        seed in any::<u64>(),
        fault in (0usize..10_000, 0usize..10_000),
    ) {
        let n = geom.n();
        let mut pm = ProtectedMemory::new(geom).expect("machine");
        // Deterministic load pattern.
        let mut g = BitGrid::new(n, n);
        let mut s = seed | 1;
        for r in 0..n {
            for c in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                g.set(r, c, s >> 63 != 0);
            }
        }
        pm.load_grid(&g);
        let (fr, fc) = (fault.0 % n, fault.1 % n);
        let before = pm.bit(fr, fc);
        pm.inject_fault(fr, fc);
        let report = pm.check_all().expect("check");
        prop_assert_eq!(report.corrected, 1);
        prop_assert_eq!(report.uncorrectable, 0);
        prop_assert_eq!(pm.bit(fr, fc), before);
        prop_assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn faults_in_distinct_blocks_all_corrected(
        geom in geometry_strategy(),
        picks in proptest::collection::vec((0usize..10_000, 0usize..10_000), 1..6),
    ) {
        let n = geom.n();
        let mut pm = ProtectedMemory::new(geom).expect("machine");
        // Choose at most one fault per block.
        let mut used = std::collections::HashSet::new();
        let mut injected = 0usize;
        for (a, b) in picks {
            let (r, c) = (a % n, b % n);
            let blk = geom.block_of(r, c);
            if used.insert(blk) {
                pm.inject_fault(r, c);
                injected += 1;
            }
        }
        let report = pm.check_all().expect("check");
        prop_assert_eq!(report.corrected, injected);
        prop_assert_eq!(report.uncorrectable, 0);
        prop_assert!(pm.verify_consistency().is_ok());
    }
}
