//! Differential property tests pinning the word-parallel simulation engine
//! bit-identical to the retained scalar reference: same cell states, same
//! check-bits, same [`MachineStats`], same [`CheckReport`]s — across both
//! axes, geometries whose `n` is *not* a multiple of 64 (the slack-bit
//! edge), and mixed op sequences ending in `verify_consistency`.

use pimecc_core::shifter::Family;
use pimecc_core::{BlockGeometry, CheckReport, MachineStats, ProtectedMemory, SimEngine};
use pimecc_xbar::{BitGrid, LineSet, ParallelStep};
use proptest::prelude::*;

/// Geometries spanning the word-boundary edge cases: `n % 64` of 9, 15, 1
/// (n = 65: one slack bit), 6, 0 (n = 192: exact words) and 62.
const GEOMETRIES: &[(usize, usize)] = &[(9, 3), (15, 5), (65, 5), (70, 7), (192, 3), (126, 9)];

fn machine(n: usize, m: usize, engine: SimEngine) -> ProtectedMemory {
    let mut pm = ProtectedMemory::new(BlockGeometry::new(n, m).expect("geom")).expect("machine");
    pm.set_engine(engine);
    pm
}

fn random_grid(n: usize, seed: u64) -> BitGrid {
    let mut g = BitGrid::new(n, n);
    let mut s = seed | 1;
    for r in 0..n {
        for c in 0..n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.set(r, c, s >> 63 != 0);
        }
    }
    g
}

/// One randomly drawn machine operation (indices are reduced modulo the
/// geometry when applied, so one plan serves every geometry).
#[derive(Debug, Clone)]
enum Op {
    InitRows {
        cols: Vec<usize>,
        sel: u8,
        a: usize,
        b: usize,
    },
    NorRows {
        ins: Vec<usize>,
        out: usize,
        sel: u8,
        a: usize,
        b: usize,
    },
    InitCols {
        rows: Vec<usize>,
        sel: u8,
        a: usize,
        b: usize,
    },
    NorCols {
        ins: Vec<usize>,
        out: usize,
        sel: u8,
        a: usize,
        b: usize,
    },
    WriteRow {
        line: usize,
        cells: Vec<(usize, bool)>,
    },
    WriteCol {
        line: usize,
        cells: Vec<(usize, bool)>,
    },
    Fault {
        r: usize,
        c: usize,
    },
    CheckFault {
        lead: bool,
        d: usize,
        br: usize,
        bc: usize,
    },
    CheckRow {
        bl: usize,
    },
    CheckCol {
        bl: usize,
    },
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = || 0usize..10_000;
    let idxs = || proptest::collection::vec(0usize..10_000, 1..4);
    let cells = || proptest::collection::vec((0usize..10_000, any::<bool>()), 1..6);
    prop_oneof![
        (idxs(), 0u8..3, idx(), idx()).prop_map(|(cols, sel, a, b)| Op::InitRows {
            cols,
            sel,
            a,
            b
        }),
        (idxs(), idx(), 0u8..3, idx(), idx()).prop_map(|(ins, out, sel, a, b)| Op::NorRows {
            ins,
            out,
            sel,
            a,
            b
        }),
        (idxs(), 0u8..3, idx(), idx()).prop_map(|(rows, sel, a, b)| Op::InitCols {
            rows,
            sel,
            a,
            b
        }),
        (idxs(), idx(), 0u8..3, idx(), idx()).prop_map(|(ins, out, sel, a, b)| Op::NorCols {
            ins,
            out,
            sel,
            a,
            b
        }),
        (idx(), cells()).prop_map(|(line, cells)| Op::WriteRow { line, cells }),
        (idx(), cells()).prop_map(|(line, cells)| Op::WriteCol { line, cells }),
        (idx(), idx()).prop_map(|(r, c)| Op::Fault { r, c }),
        (any::<bool>(), idx(), idx(), idx()).prop_map(|(lead, d, br, bc)| Op::CheckFault {
            lead,
            d,
            br,
            bc
        }),
        idx().prop_map(|bl| Op::CheckRow { bl }),
        idx().prop_map(|bl| Op::CheckCol { bl }),
        Just(Op::Scrub),
    ]
}

fn line_set(sel: u8, a: usize, b: usize, n: usize) -> LineSet {
    match sel {
        0 => LineSet::All,
        1 => LineSet::One(a % n),
        _ => {
            let (lo, hi) = ((a % n).min(b % n), (a % n).max(b % n) + 1);
            LineSet::Range(lo..hi)
        }
    }
}

/// Applies one op to a machine, reducing indices into range. NOR outputs
/// are initialized first so strict mode is satisfied; every generated op
/// is therefore legal and the reports/states of the two engines must
/// coincide exactly.
fn apply(pm: &mut ProtectedMemory, op: &Op) -> (CheckReport, bool) {
    let n = pm.geometry().n();
    let m = pm.geometry().m();
    let bps = pm.geometry().blocks_per_side();
    let mut report = CheckReport::default();
    match op {
        Op::InitRows { cols, sel, a, b } => {
            // Distinct cells, as every real caller passes: a duplicated
            // init cell would double-flip its diagonals in the scalar
            // reference (the documented pre-existing pitfall of pointless
            // duplicates).
            let mut cols: Vec<usize> = cols.iter().map(|&c| c % n).collect();
            cols.sort_unstable();
            cols.dedup();
            pm.exec_init_rows(&cols, &line_set(*sel, *a, *b, n))
                .unwrap();
        }
        Op::NorRows {
            ins,
            out,
            sel,
            a,
            b,
        } => {
            let out = out % n;
            let ins: Vec<usize> = ins
                .iter()
                .map(|&c| c % n)
                .map(|c| if c == out { (c + 1) % n } else { c })
                .collect();
            let sel = line_set(*sel, *a, *b, n);
            pm.exec_init_rows(&[out], &sel).unwrap();
            pm.exec_nor_rows(&ins, out, &sel).unwrap();
        }
        Op::InitCols { rows, sel, a, b } => {
            let mut rows: Vec<usize> = rows.iter().map(|&r| r % n).collect();
            rows.sort_unstable();
            rows.dedup();
            pm.exec_init_cols(&rows, &line_set(*sel, *a, *b, n))
                .unwrap();
        }
        Op::NorCols {
            ins,
            out,
            sel,
            a,
            b,
        } => {
            let out = out % n;
            let ins: Vec<usize> = ins
                .iter()
                .map(|&r| r % n)
                .map(|r| if r == out { (r + 1) % n } else { r })
                .collect();
            let sel = line_set(*sel, *a, *b, n);
            pm.exec_init_cols(&[out], &sel).unwrap();
            pm.exec_nor_cols(&ins, out, &sel).unwrap();
        }
        Op::WriteRow { line, cells } => {
            let cells: Vec<(usize, bool)> = cells.iter().map(|&(c, v)| (c % n, v)).collect();
            pm.write_row_cells(line % n, &cells).unwrap();
        }
        Op::WriteCol { line, cells } => {
            let cells: Vec<(usize, bool)> = cells.iter().map(|&(r, v)| (r % n, v)).collect();
            pm.write_col_cells(line % n, &cells).unwrap();
        }
        Op::Fault { r, c } => pm.inject_fault(r % n, c % n),
        Op::CheckFault { lead, d, br, bc } => pm.inject_check_fault(
            if *lead {
                Family::Leading
            } else {
                Family::Counter
            },
            d % m,
            br % bps,
            bc % bps,
        ),
        Op::CheckRow { bl } => report += pm.check_block_row(bl % bps).unwrap(),
        Op::CheckCol { bl } => report += pm.check_block_col(bl % bps).unwrap(),
        Op::Scrub => pm.scrub(),
    }
    (report, pm.verify_consistency().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole invariant: arbitrary legal op sequences leave both
    // engines with identical data, identical check-bits (probed through
    // full checks), identical statistics and identical reports.
    #[test]
    fn engines_are_bit_identical_under_mixed_ops(
        geom_idx in 0usize..GEOMETRIES.len(),
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..16),
        paranoid in (0u8..5).prop_map(|x| x == 0),
    ) {
        let (n, m) = GEOMETRIES[geom_idx];
        let grid = random_grid(n, seed);
        let mut word = machine(n, m, SimEngine::WordParallel);
        let mut scalar = machine(n, m, SimEngine::ScalarReference);
        word.set_check_on_critical(paranoid);
        scalar.set_check_on_critical(paranoid);
        word.load_grid(&grid);
        scalar.load_grid(&grid);
        // One uncovered scratch block exercises the coverage masks.
        word.set_block_covered(0, 0, false).unwrap();
        scalar.set_block_covered(0, 0, false).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let (wr, wc) = apply(&mut word, op);
            let (sr, sc) = apply(&mut scalar, op);
            prop_assert_eq!(wr, sr, "op {} report", i);
            prop_assert_eq!(wc, sc, "op {} consistency", i);
        }
        prop_assert_eq!(word.mem().grid().diff(scalar.mem().grid()), vec![]);
        prop_assert_eq!(word.stats(), scalar.stats());
        let wfinal = word.check_all().unwrap();
        let sfinal = scalar.check_all().unwrap();
        prop_assert_eq!(wfinal, sfinal);
        prop_assert_eq!(word.verify_consistency(), scalar.verify_consistency());
    }

    // The fused whole-sequence executor must match the per-step replay of
    // the same steps: same data, same check-bits, same stats.
    #[test]
    fn fused_step_sequences_match_per_step_replay(
        geom_idx in 0usize..GEOMETRIES.len(),
        seed in any::<u64>(),
        gates in proptest::collection::vec((0usize..10_000, 0usize..10_000, 0usize..10_000), 1..12),
        start in 0usize..64,
        len in 1usize..192,
    ) {
        let (n, m) = GEOMETRIES[geom_idx];
        let grid = random_grid(n, seed);
        // A self-arming sequence: every gate's output initialized first.
        let mut steps = Vec::new();
        for &(a, b, out) in &gates {
            let out = out % n;
            let fix = |c: usize| if c % n == out { (c + 1) % n } else { c % n };
            steps.push(ParallelStep::Init(vec![out]));
            steps.push(ParallelStep::Nor(vec![fix(a), fix(b)], out));
        }
        let start = start % n;
        let rows = LineSet::Range(start..(start + len % n).min(n).max(start + 1));

        let mut fused = machine(n, m, SimEngine::WordParallel);
        fused.load_grid(&grid);
        let used_fused = fused.exec_steps_rows(&steps, &rows).unwrap();

        let mut stepped = machine(n, m, SimEngine::WordParallel);
        stepped.load_grid(&grid);
        for step in &steps {
            match step {
                ParallelStep::Init(cells) => stepped.exec_init_rows(cells, &rows).unwrap(),
                ParallelStep::Nor(ins, out) => stepped.exec_nor_rows(ins, *out, &rows).unwrap(),
            }
        }
        if used_fused {
            prop_assert_eq!(fused.mem().grid().diff(stepped.mem().grid()), vec![]);
            prop_assert_eq!(fused.stats(), stepped.stats());
            prop_assert_eq!(fused.verify_consistency(), stepped.verify_consistency());
            prop_assert!(fused.verify_consistency().is_ok());
        }
    }

    // Row-team width is purely a host wall-clock knob: for any thread
    // count the fused replay leaves state, statistics, check-bits and
    // reports identical to the single-thread replay AND to the scalar
    // reference replaying the same steps one at a time.
    #[test]
    fn row_team_width_never_changes_state_stats_or_checks(
        geom_idx in 0usize..GEOMETRIES.len(),
        seed in any::<u64>(),
        gates in proptest::collection::vec((0usize..10_000, 0usize..10_000, 0usize..10_000), 1..12),
        start in 0usize..64,
        len in 1usize..192,
        threads in 2usize..9,
    ) {
        let (n, m) = GEOMETRIES[geom_idx];
        let grid = random_grid(n, seed);
        let mut steps = Vec::new();
        for &(a, b, out) in &gates {
            let out = out % n;
            let fix = |c: usize| if c % n == out { (c + 1) % n } else { c % n };
            steps.push(ParallelStep::Init(vec![out]));
            steps.push(ParallelStep::Nor(vec![fix(a), fix(b)], out));
        }
        let start = start % n;
        let range = start..(start + len % n).min(n).max(start + 1);

        let mut team = machine(n, m, SimEngine::WordParallel);
        team.load_grid(&grid);
        let Some(prog) = team.compile_fused_rows(&steps) else {
            return;
        };
        team.exec_fused_rows(&prog, range.clone(), threads);

        let mut single = machine(n, m, SimEngine::WordParallel);
        single.load_grid(&grid);
        let prog1 = single.compile_fused_rows(&steps).expect("same machine config compiles");
        single.exec_fused_rows(&prog1, range.clone(), 1);

        let mut scalar = machine(n, m, SimEngine::ScalarReference);
        scalar.load_grid(&grid);
        let rows = LineSet::Range(range);
        for step in &steps {
            match step {
                ParallelStep::Init(cells) => scalar.exec_init_rows(cells, &rows).unwrap(),
                ParallelStep::Nor(ins, out) => scalar.exec_nor_rows(ins, *out, &rows).unwrap(),
            }
        }

        prop_assert_eq!(team.mem().grid().diff(single.mem().grid()), vec![]);
        prop_assert_eq!(team.stats(), single.stats());
        prop_assert_eq!(team.mem().grid().diff(scalar.mem().grid()), vec![]);
        prop_assert_eq!(team.stats(), scalar.stats());
        let treport = team.check_all().unwrap();
        prop_assert_eq!(treport, single.check_all().unwrap());
        prop_assert_eq!(treport, scalar.check_all().unwrap());
        prop_assert_eq!(treport.corrected + treport.uncorrectable, 0);
        prop_assert!(team.verify_consistency().is_ok());
    }
}

#[test]
fn fused_executor_declines_ineligible_shapes() {
    let mut pm = machine(15, 5, SimEngine::WordParallel);
    let steps = vec![
        ParallelStep::Init(vec![3]),
        ParallelStep::Nor(vec![0, 1], 3),
    ];
    // Explicit selections and scalar engines fall back.
    assert!(!pm
        .exec_steps_rows(&steps, &LineSet::Explicit(vec![0, 2]))
        .unwrap());
    let mut scalar = machine(15, 5, SimEngine::ScalarReference);
    assert!(!scalar.exec_steps_rows(&steps, &LineSet::All).unwrap());
    // A gate whose output is never armed in-sequence falls back under
    // strict mode.
    let unarmed = vec![ParallelStep::Nor(vec![0, 1], 3)];
    assert!(!pm.exec_steps_rows(&unarmed, &LineSet::All).unwrap());
    // And the eligible shape runs and stays consistent.
    assert!(pm.exec_steps_rows(&steps, &LineSet::All).unwrap());
    assert!(pm.verify_consistency().is_ok());
    assert_eq!(
        pm.stats(),
        &MachineStats {
            mem_cycles: 6,
            transfer_cycles: 4,
            pc_xor3_ops: 4,
            critical_ops: 2,
            ..Default::default()
        }
    );
}

#[test]
fn empty_selections_bill_identically() {
    // An empty Range selects nothing: no critical protocol on either
    // engine, even on a fully covered machine.
    for engine in [SimEngine::WordParallel, SimEngine::ScalarReference] {
        let mut pm = machine(15, 5, engine);
        let before = *pm.stats();
        pm.exec_nor_rows(&[0, 1], 4, &LineSet::Range(3..3)).unwrap();
        pm.exec_nor_cols(&[0, 1], 4, &LineSet::Range(7..7)).unwrap();
        let delta = *pm.stats() - before;
        assert_eq!(delta.critical_ops, 0, "{engine:?}");
        assert_eq!(delta.mem_cycles, 2, "{engine:?}");
        assert!(pm.verify_consistency().is_ok(), "{engine:?}");
    }
}
