//! The DAC'21 diagonal in-memory ECC mechanism for MAGIC-based memristive
//! processing-in-memory.
//!
//! This crate is the primary contribution of the reproduced paper: an
//! error-correcting-code scheme whose check-bits are computed along the
//! *wrap-around diagonals* of m×m blocks of a crossbar array. Because MAGIC
//! stateful logic operates row-parallel or column-parallel, any single
//! parallel operation touches **at most one data bit of every diagonal** —
//! so the check-bits can be maintained continuously, in Θ(1) in-memory
//! operations per write, without ever reading the data out.
//!
//! Main components:
//!
//! * [`BlockGeometry`] — the diagonal index arithmetic (and the proof-
//!   bearing property that `m` odd makes (leading, counter) pairs uniquely
//!   locate a cell);
//! * [`DiagonalCode`] — the per-block parity codec: encode, syndrome,
//!   single-error locate/correct;
//! * [`CheckMemory`] — the CMEM: 2·m check-bit crossbars indexed by
//!   diagonal, with the processing-crossbar XOR3 micro-program and the
//!   checking crossbar;
//! * [`shifter`] — the barrel shifters that emulate diagonal wiring between
//!   the MEM and the CMEM;
//! * [`ProtectedMemory`] — the integrated machine: a MAGIC crossbar whose
//!   critical operations transparently maintain the ECC, with fault
//!   injection, block checking and correction;
//! * [`AreaModel`] — the device-count model behind the paper's Table II;
//! * [`horizontal`] — the horizontal-parity strawman of the paper's §III,
//!   kept as an ablation baseline.
//!
//! # Example
//!
//! ```
//! use pimecc_core::{BlockGeometry, ProtectedMemory};
//! use pimecc_xbar::LineSet;
//!
//! # fn main() -> Result<(), pimecc_core::CoreError> {
//! let geom = BlockGeometry::new(30, 15)?; // tiny 30×30 MEM, 15×15 blocks
//! let mut pm = ProtectedMemory::new(geom)?;
//! // A row-parallel NOR that writes an ECC-covered column; the machine
//! // recognizes the write as critical and updates the check-bits itself.
//! pm.exec_init_rows(&[2], &LineSet::All)?;
//! pm.exec_nor_rows(&[0, 1], 2, &LineSet::All)?;
//! // A soft error strikes...
//! pm.inject_fault(7, 2);
//! // ...and the per-block check finds and repairs it.
//! let report = pm.check_all()?;
//! assert_eq!(report.corrected, 1);
//! assert!(pm.verify_consistency().is_ok());
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod campaign;
pub mod cmem;
pub mod code;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod horizontal;
pub mod machine;
pub mod memory;
pub mod shifter;

pub use area::AreaModel;
pub use campaign::{CampaignConfig, CampaignTally, FaultCampaign};
pub use cmem::{CheckMemory, ProcessingCrossbar};
pub use code::{DiagonalCode, ErrorLocation, Syndrome};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::CoreError;
pub use geometry::BlockGeometry;
pub use machine::{CheckReport, FusedProgram, MachineStats, ProtectedMemory, StuckCell};
pub use memory::MemoryArray;
pub use pimecc_xbar::SimEngine;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
