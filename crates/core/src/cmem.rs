//! The Check Memory (CMEM): per-diagonal check-bit crossbars and the
//! processing crossbars that run the XOR3 micro-program.
//!
//! Paper §IV-A: the CMEM is split into `m` check-bit crossbars per diagonal
//! family — crossbar `i` of dimension `(n/m)×(n/m)` holds the check-bit of
//! diagonal `i` for every block — plus dedicated *processing crossbars*
//! that compute `check ⊕ old ⊕ new` as two 4-NOR XNOR stages (8 MAGIC NORs
//! total), and a *checking crossbar* used to compare syndromes to zero.

use crate::geometry::BlockGeometry;
use crate::shifter::Family;
use pimecc_xbar::{Crossbar, LineSet, XbarError};

/// The check-bit store: `2·m` logical planes of `(n/m)×(n/m)` bits.
///
/// Plane `d` of a family holds, at `(block_row, block_col)`, the parity of
/// diagonal `d` of that block. The *simulation* packs the `m` check-bits
/// of one family of one block into words (bit `d % 64` of word `d / 64`),
/// so that the word-diff maintenance path can flip every diagonal a
/// parallel operation touched in a block with one XOR
/// ([`CheckMemory::xor_block_words`]) and the checker can read a block's
/// parity vector in one load ([`CheckMemory::block_checks_word`]). The
/// per-plane API is unchanged.
///
/// # Example
///
/// ```
/// use pimecc_core::{BlockGeometry, CheckMemory};
/// use pimecc_core::shifter::Family;
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let geom = BlockGeometry::new(9, 3)?;
/// let mut cmem = CheckMemory::new(geom);
/// cmem.xor_bit(Family::Leading, 2, 0, 1, true);
/// assert!(cmem.bit(Family::Leading, 2, 0, 1));
/// assert_eq!(cmem.memristor_count(), 2 * 3 * 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CheckMemory {
    geom: BlockGeometry,
    /// Packed leading-family check words, `wpf` words per block, indexed
    /// `[(block_row * bps + block_col) * wpf + d / 64]`.
    leading: Vec<u64>,
    /// Counter family, same layout.
    counter: Vec<u64>,
    /// Words per family per block (`ceil(m / 64)`).
    wpf: usize,
}

impl CheckMemory {
    /// Creates an all-zero check memory for `geom` (consistent with an
    /// all-zero MEM).
    pub fn new(geom: BlockGeometry) -> Self {
        let wpf = geom.m().div_ceil(64);
        let blocks = geom.block_count();
        CheckMemory {
            geom,
            leading: vec![0; blocks * wpf],
            counter: vec![0; blocks * wpf],
            wpf,
        }
    }

    /// The geometry this CMEM serves.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    #[inline]
    fn family(&self, family: Family) -> &[u64] {
        match family {
            Family::Leading => &self.leading,
            Family::Counter => &self.counter,
        }
    }

    #[inline]
    fn family_mut(&mut self, family: Family) -> &mut [u64] {
        match family {
            Family::Leading => &mut self.leading,
            Family::Counter => &mut self.counter,
        }
    }

    #[inline]
    fn index(&self, d: usize, block_row: usize, block_col: usize) -> (usize, u64) {
        debug_assert!(d < self.geom.m(), "diagonal index out of range");
        debug_assert!(
            block_row < self.geom.blocks_per_side() && block_col < self.geom.blocks_per_side(),
            "block index out of range"
        );
        let blk = block_row * self.geom.blocks_per_side() + block_col;
        (blk * self.wpf + d / 64, 1u64 << (d % 64))
    }

    /// Reads the check-bit of diagonal `d` of block `(block_row,
    /// block_col)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range indices.
    pub fn bit(&self, family: Family, d: usize, block_row: usize, block_col: usize) -> bool {
        let (w, mask) = self.index(d, block_row, block_col);
        self.family(family)[w] & mask != 0
    }

    /// Writes a check-bit directly (bulk loading / test setup).
    pub fn set_bit(
        &mut self,
        family: Family,
        d: usize,
        block_row: usize,
        block_col: usize,
        value: bool,
    ) {
        let (w, mask) = self.index(d, block_row, block_col);
        let word = &mut self.family_mut(family)[w];
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// XORs `delta` into a check-bit — the continuous-update primitive
    /// (`check ⊕= old ⊕ new`).
    pub fn xor_bit(
        &mut self,
        family: Family,
        d: usize,
        block_row: usize,
        block_col: usize,
        delta: bool,
    ) {
        if delta {
            let (w, mask) = self.index(d, block_row, block_col);
            self.family_mut(family)[w] ^= mask;
        }
    }

    /// Flips a check-bit unconditionally — the soft-error primitive for
    /// faults striking the CMEM itself.
    pub fn inject_fault(&mut self, family: Family, d: usize, block_row: usize, block_col: usize) {
        let (w, mask) = self.index(d, block_row, block_col);
        self.family_mut(family)[w] ^= mask;
    }

    /// Flips one Leading and one Counter check-bit of the same block in one
    /// call — the per-changed-cell update of word-diff ECC maintenance
    /// (every data-bit change strikes exactly one diagonal of each family).
    #[inline]
    pub fn flip_pair(
        &mut self,
        lead_d: usize,
        counter_d: usize,
        block_row: usize,
        block_col: usize,
    ) {
        let (lw, lmask) = self.index(lead_d, block_row, block_col);
        let (cw, cmask) = self.index(counter_d, block_row, block_col);
        self.leading[lw] ^= lmask;
        self.counter[cw] ^= cmask;
    }

    /// XORs packed diagonal deltas into one block's check words — the Θ(1)
    /// form of the critical-operation update for a whole parallel write:
    /// every diagonal a MAGIC operation touched in the block flips in one
    /// operation per family (bit `d` of each delta word is diagonal `d`).
    ///
    /// # Panics
    ///
    /// Panics if `m > 64` (wider blocks update per diagonal).
    #[inline]
    pub fn xor_block_words(
        &mut self,
        block_row: usize,
        block_col: usize,
        lead_delta: u64,
        counter_delta: u64,
    ) {
        assert!(self.wpf == 1, "packed block update requires m <= 64");
        let blk = block_row * self.geom.blocks_per_side() + block_col;
        self.leading[blk] ^= lead_delta;
        self.counter[blk] ^= counter_delta;
    }

    /// All m check-bits of one family for one block, indexed by diagonal.
    pub fn block_checks(&self, family: Family, block_row: usize, block_col: usize) -> Vec<bool> {
        (0..self.geom.m())
            .map(|d| self.bit(family, d, block_row, block_col))
            .collect()
    }

    /// All m check-bits of one family for one block, packed into a word
    /// (bit `d` is diagonal `d`) — the word-diff form of
    /// [`CheckMemory::block_checks`], a single load.
    ///
    /// # Panics
    ///
    /// Panics if `m > 64`.
    pub fn block_checks_word(&self, family: Family, block_row: usize, block_col: usize) -> u64 {
        assert!(self.wpf == 1, "packed check-bits require m <= 64");
        let blk = block_row * self.geom.blocks_per_side() + block_col;
        self.family(family)[blk]
    }

    /// One family's packed check words for a whole block row (entry `bc`
    /// is the word of block `(block_row, bc)`) — lets a row sweep compare
    /// syndromes against a contiguous slice instead of one indexed load
    /// per block.
    ///
    /// # Panics
    ///
    /// Panics if `m > 64`.
    pub(crate) fn family_row(&self, family: Family, block_row: usize) -> &[u64] {
        assert!(self.wpf == 1, "packed check-bits require m <= 64");
        let bps = self.geom.blocks_per_side();
        &self.family(family)[block_row * bps..(block_row + 1) * bps]
    }

    /// Overwrites the check-bits of one block from packed parity words
    /// (bit `d` of each word is diagonal `d`) — the word-diff form of
    /// [`CheckMemory::store_block_checks`], a single store.
    ///
    /// # Panics
    ///
    /// Panics if `m > 64`.
    pub fn store_block_checks_words(
        &mut self,
        block_row: usize,
        block_col: usize,
        lead: u64,
        counter: u64,
    ) {
        assert!(self.wpf == 1, "packed check-bits require m <= 64");
        let blk = block_row * self.geom.blocks_per_side() + block_col;
        self.leading[blk] = lead;
        self.counter[blk] = counter;
    }

    /// Overwrites the check-bits of one block from parity vectors.
    ///
    /// # Panics
    ///
    /// Panics if either vector's length differs from `m`.
    pub fn store_block_checks(
        &mut self,
        block_row: usize,
        block_col: usize,
        lead: &[bool],
        counter: &[bool],
    ) {
        let m = self.geom.m();
        assert_eq!(lead.len(), m, "leading parity length");
        assert_eq!(counter.len(), m, "counter parity length");
        for d in 0..m {
            self.set_bit(Family::Leading, d, block_row, block_col, lead[d]);
            self.set_bit(Family::Counter, d, block_row, block_col, counter[d]);
        }
    }

    /// Total memristor count of the check-bit crossbars (Table II:
    /// `2·m·(n/m)²`).
    pub fn memristor_count(&self) -> u64 {
        let b = self.geom.blocks_per_side() as u64;
        2 * self.geom.m() as u64 * b * b
    }
}

/// A processing crossbar: the 11-cell-deep MAGIC array that evaluates
/// `XOR3(check, old, new)` lane-parallel in 8 NOR operations.
///
/// Lane layout (one column per lane):
///
/// | row | content                 |
/// |-----|-------------------------|
/// | 0–2 | inputs `a`, `b`, `c`    |
/// | 3–6 | XNOR(a,b) temporaries   |
/// | 7–10| XNOR(t,c) temporaries   |
///
/// Row 10 holds the result, which equals `a ⊕ b ⊕ c` because
/// `XNOR(XNOR(a,b),c) = a ⊕ b ⊕ c`.
///
/// # Example
///
/// ```
/// use pimecc_core::ProcessingCrossbar;
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let mut pc = ProcessingCrossbar::new(4);
/// let out = pc.compute_xor3(
///     &[true, true, false, false],
///     &[true, false, true, false],
///     &[true, false, false, true],
/// )?;
/// assert_eq!(out, vec![true, true, true, true]);
/// assert_eq!(pc.nor_cycles_per_xor3(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProcessingCrossbar {
    xb: Crossbar,
}

/// Rows of the lane layout.
const ROWS: usize = 11;

impl ProcessingCrossbar {
    /// Creates a processing crossbar with `lanes` parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        ProcessingCrossbar {
            xb: Crossbar::new(ROWS, lanes),
        }
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        self.xb.cols()
    }

    /// The XOR3 micro-program length in MAGIC NOR cycles — 8, matching the
    /// paper §IV-A.2.
    pub fn nor_cycles_per_xor3(&self) -> u64 {
        8
    }

    /// Memristor count for `k` such crossbars per family serving an
    /// n-cell-wide MEM (Table II: `2·11·k·n`).
    pub fn memristor_count(n: usize, k: usize) -> u64 {
        2 * ROWS as u64 * k as u64 * n as u64
    }

    /// Runs the 8-NOR XOR3 micro-program on three lane vectors.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations (impossible for in-range
    /// inputs).
    ///
    /// # Panics
    ///
    /// Panics if the input slices are longer than the lane count.
    pub fn compute_xor3(
        &mut self,
        a: &[bool],
        b: &[bool],
        c: &[bool],
    ) -> Result<Vec<bool>, XbarError> {
        let lanes = self.lanes();
        assert!(
            a.len() <= lanes && b.len() == a.len() && c.len() == a.len(),
            "lane overflow"
        );
        let width = a.len();
        // A contiguous range selects the active lanes without
        // materializing an index vector per XOR3 invocation.
        let sel = LineSet::Range(0..width);
        // Load inputs (data arrives over the shifters / connection unit).
        for i in 0..width {
            self.xb.write_bit(0, i, a[i]);
            self.xb.write_bit(1, i, b[i]);
            self.xb.write_bit(2, i, c[i]);
        }
        // Arm all temporaries in one parallel init.
        self.xb.exec_init_cols(&[3, 4, 5, 6, 7, 8, 9, 10], &sel)?;
        // XNOR(a, b): x=NOR(a,b); y=NOR(a,x); z=NOR(b,x); t=NOR(y,z).
        self.xb.exec_nor_cols(&[0, 1], 3, &sel)?;
        self.xb.exec_nor_cols(&[0, 3], 4, &sel)?;
        self.xb.exec_nor_cols(&[1, 3], 5, &sel)?;
        self.xb.exec_nor_cols(&[4, 5], 6, &sel)?;
        // XNOR(t, c): same shape one level down.
        self.xb.exec_nor_cols(&[6, 2], 7, &sel)?;
        self.xb.exec_nor_cols(&[6, 7], 8, &sel)?;
        self.xb.exec_nor_cols(&[2, 7], 9, &sel)?;
        self.xb.exec_nor_cols(&[8, 9], 10, &sel)?;
        Ok((0..width).map(|i| self.xb.bit(10, i)).collect())
    }

    /// Total NOR cycles executed so far (to confirm the 8-per-XOR3 cost).
    pub fn nor_cycles_total(&self) -> u64 {
        self.xb.stats().nor_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor3_truth_table_exhaustive() {
        let mut pc = ProcessingCrossbar::new(8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for v in 0..8 {
            a.push(v & 1 != 0);
            b.push(v & 2 != 0);
            c.push(v & 4 != 0);
        }
        let out = pc.compute_xor3(&a, &b, &c).unwrap();
        for v in 0..8usize {
            let want = (v.count_ones() % 2) == 1;
            assert_eq!(out[v], want, "pattern {v:03b}");
        }
    }

    #[test]
    fn xor3_costs_exactly_eight_nors() {
        let mut pc = ProcessingCrossbar::new(4);
        pc.compute_xor3(&[true; 4], &[false; 4], &[true; 4])
            .unwrap();
        assert_eq!(pc.nor_cycles_total(), 8);
        pc.compute_xor3(&[false; 4], &[false; 4], &[false; 4])
            .unwrap();
        assert_eq!(pc.nor_cycles_total(), 16);
    }

    #[test]
    fn xor3_reusable_across_invocations() {
        let mut pc = ProcessingCrossbar::new(2);
        for _ in 0..5 {
            let out = pc
                .compute_xor3(&[true, false], &[true, true], &[true, false])
                .unwrap();
            assert_eq!(out, vec![true, true]); // 1^1^1 = 1, 0^1^0 = 1
        }
    }

    #[test]
    fn processing_crossbar_count_matches_table2() {
        // Table II: processing XBs = 2 x 11 x k x n = 67,320 for k=3,
        // n=1020 (printed as 6.73e4).
        assert_eq!(ProcessingCrossbar::memristor_count(1020, 3), 67_320);
    }

    #[test]
    fn check_memory_round_trips_bits() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let mut cmem = CheckMemory::new(geom);
        cmem.set_bit(Family::Counter, 1, 2, 0, true);
        assert!(cmem.bit(Family::Counter, 1, 2, 0));
        cmem.xor_bit(Family::Counter, 1, 2, 0, true);
        assert!(!cmem.bit(Family::Counter, 1, 2, 0));
        cmem.xor_bit(Family::Counter, 1, 2, 0, false);
        assert!(!cmem.bit(Family::Counter, 1, 2, 0));
    }

    #[test]
    fn block_checks_pack_by_diagonal() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let mut cmem = CheckMemory::new(geom);
        cmem.store_block_checks(1, 2, &[true, false, true], &[false, true, false]);
        assert_eq!(
            cmem.block_checks(Family::Leading, 1, 2),
            vec![true, false, true]
        );
        assert_eq!(
            cmem.block_checks(Family::Counter, 1, 2),
            vec![false, true, false]
        );
        // Other blocks untouched.
        assert_eq!(cmem.block_checks(Family::Leading, 0, 0), vec![false; 3]);
    }

    #[test]
    fn packed_check_words_round_trip() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let mut cmem = CheckMemory::new(geom);
        cmem.store_block_checks_words(2, 1, 0b101, 0b010);
        assert_eq!(cmem.block_checks_word(Family::Leading, 2, 1), 0b101);
        assert_eq!(cmem.block_checks_word(Family::Counter, 2, 1), 0b010);
        assert_eq!(
            cmem.block_checks(Family::Leading, 2, 1),
            vec![true, false, true]
        );
        assert_eq!(cmem.block_checks_word(Family::Leading, 0, 0), 0);
    }

    #[test]
    fn fault_injection_flips_check_bits() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let mut cmem = CheckMemory::new(geom);
        cmem.inject_fault(Family::Leading, 0, 0, 0);
        assert!(cmem.bit(Family::Leading, 0, 0, 0));
        cmem.inject_fault(Family::Leading, 0, 0, 0);
        assert!(!cmem.bit(Family::Leading, 0, 0, 0));
    }

    #[test]
    fn memristor_count_matches_paper() {
        // Table II: check-bits = 2 x m x (n/m)^2 = 138,720 for n=1020, m=15
        // (printed as 1.39e5).
        let geom = BlockGeometry::paper();
        assert_eq!(CheckMemory::new(geom).memristor_count(), 138_720);
    }
}
