//! The per-block diagonal parity code: encode, syndrome, locate, correct.
//!
//! Each m×m block carries 2m check-bits: the parity of each of its m
//! leading diagonals and of its m counter diagonals. The code is a
//! two-dimensional parity product code over the (diagonal, diagonal)
//! coordinate system, giving single-error correction per block
//! (paper §III, citing multidimensional codes).

use crate::geometry::BlockGeometry;
use pimecc_xbar::BitGrid;

/// The syndrome of one block: which diagonal parities disagree with the
/// stored check-bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Syndrome {
    /// Mismatching leading-diagonal indices.
    pub leading: Vec<usize>,
    /// Mismatching counter-diagonal indices.
    pub counter: Vec<usize>,
}

impl Syndrome {
    /// True when every parity matches (no detectable error).
    pub fn is_zero(&self) -> bool {
        self.leading.is_empty() && self.counter.is_empty()
    }

    /// Interprets the syndrome pattern (single-error decoding).
    pub fn decode(&self, geom: &BlockGeometry) -> ErrorLocation {
        match (self.leading.as_slice(), self.counter.as_slice()) {
            ([], []) => ErrorLocation::None,
            ([l], [k]) => {
                let (r, c) = geom.locate(*l, *k);
                ErrorLocation::Data {
                    local_row: r,
                    local_col: c,
                }
            }
            ([l], []) => ErrorLocation::LeadingCheck { diagonal: *l },
            ([], [k]) => ErrorLocation::CounterCheck { diagonal: *k },
            _ => ErrorLocation::Uncorrectable,
        }
    }
}

/// Where (if anywhere) the single error sits, per the syndrome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorLocation {
    /// All parities consistent.
    None,
    /// A data bit at the given block-local coordinates flipped.
    Data {
        /// Block-local row.
        local_row: usize,
        /// Block-local column.
        local_col: usize,
    },
    /// A leading-diagonal check-bit itself flipped.
    LeadingCheck {
        /// Diagonal index of the stale check-bit.
        diagonal: usize,
    },
    /// A counter-diagonal check-bit itself flipped.
    CounterCheck {
        /// Diagonal index of the stale check-bit.
        diagonal: usize,
    },
    /// More than one error: detectable but not correctable by this code.
    Uncorrectable,
}

/// The diagonal parity codec for one block geometry.
///
/// # Example
///
/// ```
/// use pimecc_core::{BlockGeometry, DiagonalCode, ErrorLocation};
/// use pimecc_xbar::BitGrid;
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let geom = BlockGeometry::new(5, 5)?;
/// let code = DiagonalCode::new(geom);
/// let mut block = BitGrid::new(5, 5);
/// block.set(2, 3, true);
/// let (lead, counter) = code.encode(&block);
///
/// block.flip(1, 4); // soft error
/// let syn = code.syndrome(&block, &lead, &counter);
/// assert_eq!(
///     syn.decode(&geom),
///     ErrorLocation::Data { local_row: 1, local_col: 4 }
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DiagonalCode {
    geom: BlockGeometry,
}

impl DiagonalCode {
    /// Creates the codec for `geom` (block dimension `geom.m()`).
    pub fn new(geom: BlockGeometry) -> Self {
        DiagonalCode { geom }
    }

    /// The geometry this codec operates on.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// Computes the check-bits of an m×m data block: `(leading, counter)`
    /// parity vectors, each of length m.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not m×m.
    pub fn encode(&self, block: &BitGrid) -> (Vec<bool>, Vec<bool>) {
        let m = self.geom.m();
        assert_eq!(
            (block.rows(), block.cols()),
            (m, m),
            "block must be {m}x{m}"
        );
        let mut lead = vec![false; m];
        let mut counter = vec![false; m];
        for r in 0..m {
            for c in 0..m {
                if block.get(r, c) {
                    lead[self.geom.leading(r, c)] ^= true;
                    counter[self.geom.counter(r, c)] ^= true;
                }
            }
        }
        (lead, counter)
    }

    /// Word-parallel [`DiagonalCode::encode`]: the block arrives as one
    /// packed word per local row (bit `c` of `rows[lr]` is cell
    /// `(lr, c)`), and the parity vectors return as packed words (bit `d`
    /// is the parity of diagonal `d`).
    ///
    /// The diagonal structure collapses to rotations: row `lr`'s cells lie
    /// on leading diagonals `(lr + c) mod m`, so its contribution to the
    /// leading parities is the row word rotated left by `lr` (mod m);
    /// counter diagonals `(lr − c) mod m` add a bit-reversal before the
    /// rotation. Encoding is therefore `2m` word operations instead of
    /// `m²` cell visits.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != m` or `m > 63` (odd `m` never equals 64;
    /// larger blocks use the scalar [`DiagonalCode::encode`]).
    pub fn encode_words(&self, rows: &[u64]) -> (u64, u64) {
        let m = self.geom.m();
        assert_eq!(rows.len(), m, "block must have {m} row words");
        assert!(m <= 63, "word-parallel encode requires m <= 63");
        let mask = (1u64 << m) - 1;
        let rotl = |w: u64, s: usize| {
            if s == 0 {
                w
            } else {
                ((w << s) | (w >> (m - s))) & mask
            }
        };
        let mut lead = 0u64;
        let mut counter_q = 0u64;
        for (lr, &w) in rows.iter().enumerate() {
            debug_assert_eq!(w & !mask, 0, "row word has bits past m");
            lead ^= rotl(w, lr % m);
            // Reverse maps bit c to m-1-c; rotating by lr+1 lands it on
            // (lr - c) mod m, the counter diagonal. Equivalently, reversing
            // rotl(w, m-1-lr) — and reversal is GF(2)-linear, so the
            // rotations accumulate and one reversal of the sum suffices.
            counter_q ^= rotl(w, m - 1 - lr % m);
        }
        (lead, (counter_q.reverse_bits() >> (64 - m)) & mask)
    }

    /// Computes the syndrome of `block` against stored check-bits.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree with the geometry.
    pub fn syndrome(&self, block: &BitGrid, lead: &[bool], counter: &[bool]) -> Syndrome {
        let m = self.geom.m();
        assert_eq!(lead.len(), m, "leading check-bit count");
        assert_eq!(counter.len(), m, "counter check-bit count");
        let (cl, cc) = self.encode(block);
        Syndrome {
            leading: (0..m).filter(|&i| cl[i] != lead[i]).collect(),
            counter: (0..m).filter(|&i| cc[i] != counter[i]).collect(),
        }
    }

    /// The Θ(1) *continuous update* of the paper: when one data bit of the
    /// block changes from `old` to `new`, the affected check-bits are
    /// XOR-updated in place without touching the other data.
    pub fn update(
        &self,
        local_row: usize,
        local_col: usize,
        old: bool,
        new: bool,
        lead: &mut [bool],
        counter: &mut [bool],
    ) {
        if old == new {
            return;
        }
        lead[self.geom.leading(local_row, local_col)] ^= true;
        counter[self.geom.counter(local_row, local_col)] ^= true;
    }

    /// Attempts to correct a single error in place (data block or
    /// check-bits). Returns the decoded location that was acted upon.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree with the geometry.
    pub fn correct(
        &self,
        block: &mut BitGrid,
        lead: &mut [bool],
        counter: &mut [bool],
    ) -> ErrorLocation {
        let loc = self.syndrome(block, lead, counter).decode(&self.geom);
        match loc {
            ErrorLocation::None | ErrorLocation::Uncorrectable => {}
            ErrorLocation::Data {
                local_row,
                local_col,
            } => {
                block.flip(local_row, local_col);
            }
            ErrorLocation::LeadingCheck { diagonal } => lead[diagonal] ^= true,
            ErrorLocation::CounterCheck { diagonal } => counter[diagonal] ^= true,
        }
        loc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Result;

    fn setup(m: usize) -> Result<(DiagonalCode, BitGrid)> {
        let geom = BlockGeometry::new(m, m)?;
        Ok((DiagonalCode::new(geom), BitGrid::new(m, m)))
    }

    fn pattern(m: usize, seed: u64) -> BitGrid {
        let mut g = BitGrid::new(m, m);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for r in 0..m {
            for c in 0..m {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                g.set(r, c, state >> 63 != 0);
            }
        }
        g
    }

    #[test]
    fn zero_block_has_zero_checks_and_zero_syndrome() {
        let (code, block) = setup(5).unwrap();
        let (l, k) = code.encode(&block);
        assert!(l.iter().all(|&b| !b));
        assert!(k.iter().all(|&b| !b));
        let syn = code.syndrome(&block, &l, &k);
        assert!(syn.is_zero());
        assert_eq!(syn.decode(code.geometry()), ErrorLocation::None);
    }

    #[test]
    fn every_single_data_error_is_located_exactly() {
        for m in [3usize, 5, 15] {
            let geom = BlockGeometry::new(m, m).unwrap();
            let code = DiagonalCode::new(geom);
            let block = pattern(m, 42);
            let (l, k) = code.encode(&block);
            for r in 0..m {
                for c in 0..m {
                    let mut corrupted = block.clone();
                    corrupted.flip(r, c);
                    let syn = code.syndrome(&corrupted, &l, &k);
                    assert_eq!(
                        syn.decode(&geom),
                        ErrorLocation::Data {
                            local_row: r,
                            local_col: c
                        },
                        "m={m} flip ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn every_single_check_bit_error_is_located() {
        let (code, block) = setup(7).unwrap();
        let block = {
            let mut b = block;
            b.set(3, 3, true);
            b
        };
        let (l, k) = code.encode(&block);
        for d in 0..7 {
            let mut lf = l.clone();
            lf[d] ^= true;
            let syn = code.syndrome(&block, &lf, &k);
            assert_eq!(
                syn.decode(code.geometry()),
                ErrorLocation::LeadingCheck { diagonal: d }
            );
            let mut kf = k.clone();
            kf[d] ^= true;
            let syn = code.syndrome(&block, &l, &kf);
            assert_eq!(
                syn.decode(code.geometry()),
                ErrorLocation::CounterCheck { diagonal: d }
            );
        }
    }

    #[test]
    fn correct_repairs_single_data_error() {
        let geom = BlockGeometry::new(15, 15).unwrap();
        let code = DiagonalCode::new(geom);
        let block = pattern(15, 7);
        let (mut l, mut k) = code.encode(&block);
        let mut corrupted = block.clone();
        corrupted.flip(8, 2);
        let loc = code.correct(&mut corrupted, &mut l, &mut k);
        assert_eq!(
            loc,
            ErrorLocation::Data {
                local_row: 8,
                local_col: 2
            }
        );
        assert_eq!(corrupted.diff(&block), vec![]);
    }

    #[test]
    fn correct_repairs_check_bit_error_without_touching_data() {
        let (code, block) = setup(5).unwrap();
        let (mut l, mut k) = code.encode(&block);
        l[2] = true; // stale check-bit
        let mut b = block.clone();
        let loc = code.correct(&mut b, &mut l, &mut k);
        assert_eq!(loc, ErrorLocation::LeadingCheck { diagonal: 2 });
        assert_eq!(b.diff(&block), vec![]);
        assert!(code.syndrome(&b, &l, &k).is_zero());
    }

    #[test]
    fn generic_double_errors_are_flagged_uncorrectable() {
        let geom = BlockGeometry::new(15, 15).unwrap();
        let code = DiagonalCode::new(geom);
        let block = pattern(15, 9);
        let (l, k) = code.encode(&block);
        // Two errors in general position: 2 leading + 2 counter mismatches.
        let mut corrupted = block.clone();
        corrupted.flip(0, 0);
        corrupted.flip(3, 7);
        let syn = code.syndrome(&corrupted, &l, &k);
        assert_eq!(syn.decode(&geom), ErrorLocation::Uncorrectable);
    }

    #[test]
    fn same_diagonal_double_errors_are_detected_not_miscorrected_as_data() {
        let geom = BlockGeometry::new(5, 5).unwrap();
        let code = DiagonalCode::new(geom);
        let block = BitGrid::new(5, 5);
        let (l, k) = code.encode(&block);
        // Two cells on the same leading diagonal: leading syndrome cancels,
        // two counter mismatches remain -> uncorrectable, not silent.
        let cells: Vec<_> = geom.leading_cells(2).take(2).collect();
        let mut corrupted = block.clone();
        for &(r, c) in &cells {
            corrupted.flip(r, c);
        }
        let syn = code.syndrome(&corrupted, &l, &k);
        assert_eq!(syn.leading.len(), 0);
        assert_eq!(syn.counter.len(), 2);
        assert_eq!(syn.decode(&geom), ErrorLocation::Uncorrectable);
    }

    #[test]
    fn continuous_update_matches_full_reencode() {
        let geom = BlockGeometry::new(9, 9).unwrap();
        let code = DiagonalCode::new(geom);
        let mut block = pattern(9, 3);
        let (mut l, mut k) = code.encode(&block);
        // Apply a sequence of writes, maintaining checks incrementally.
        let writes = [
            (0usize, 0usize, true),
            (4, 7, false),
            (8, 8, true),
            (4, 7, true),
        ];
        for &(r, c, v) in &writes {
            let old = block.get(r, c);
            code.update(r, c, old, v, &mut l, &mut k);
            block.set(r, c, v);
        }
        let (fl, fk) = code.encode(&block);
        assert_eq!(l, fl, "leading checks drifted");
        assert_eq!(k, fk, "counter checks drifted");
    }

    #[test]
    fn update_with_unchanged_value_is_a_no_op() {
        let geom = BlockGeometry::new(5, 5).unwrap();
        let code = DiagonalCode::new(geom);
        let mut l = vec![false; 5];
        let mut k = vec![false; 5];
        code.update(1, 1, true, true, &mut l, &mut k);
        assert!(l.iter().all(|&b| !b));
        assert!(k.iter().all(|&b| !b));
    }

    #[test]
    #[should_panic(expected = "block must be")]
    fn encode_rejects_wrong_block_size() {
        let geom = BlockGeometry::new(5, 5).unwrap();
        let code = DiagonalCode::new(geom);
        let _ = code.encode(&BitGrid::new(4, 4));
    }

    #[test]
    fn encode_words_matches_scalar_encode() {
        for m in [3usize, 5, 7, 15, 63] {
            let geom = BlockGeometry::new(m, m).unwrap();
            let code = DiagonalCode::new(geom);
            for seed in 0..8u64 {
                let block = pattern(m, seed.wrapping_mul(31).wrapping_add(m as u64));
                let (lead, counter) = code.encode(&block);
                let rows: Vec<u64> = (0..m).map(|r| block.extract_bits(r, 0, m)).collect();
                let (lw, cw) = code.encode_words(&rows);
                for d in 0..m {
                    assert_eq!(lw >> d & 1 != 0, lead[d], "m={m} seed={seed} lead {d}");
                    assert_eq!(
                        cw >> d & 1 != 0,
                        counter[d],
                        "m={m} seed={seed} counter {d}"
                    );
                }
            }
        }
    }
}
