//! Seeded fault campaigns: reproducible mixes of transient and permanent
//! faults for tests, benches and chaos drills.
//!
//! A [`FaultCampaign`] owns a splitmix64 stream and a [`CampaignConfig`]
//! describing how hostile the environment is. Each call to
//! [`FaultCampaign::strike`] plays one batch window's worth of faults into a
//! [`ProtectedMemory`]:
//!
//! * **transient singles** — independent bit flips (ion strikes, drift),
//!   repairable by the diagonal code;
//! * **multi-bit bursts** — `burst_len` adjacent flips along one row,
//!   modelling a particle track; usually uncorrectable within a block and
//!   exercises the refuse-don't-guess path;
//! * **stuck-at cells** — permanent endurance failures planted with
//!   [`ProtectedMemory::set_stuck`]; scrubbing re-detects them forever and
//!   only line retirement removes them from service.
//!
//! The stream is deterministic: the same seed and config replay the same
//! fault trace against any memory of the same geometry, which is what lets
//! chaos proptests pin regressions by seed. Per-shard campaigns are derived
//! with [`FaultCampaign::fork`] so shards see decorrelated but reproducible
//! traffic.

use crate::machine::ProtectedMemory;

/// Fault intensities for one campaign. Rates are *expected events per
/// strike*; fractional parts are resolved by a Bernoulli draw, so e.g.
/// `transient_rate = 2.5` injects 2 or 3 flips per strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Expected transient single-bit flips per strike.
    pub transient_rate: f64,
    /// Expected multi-bit bursts per strike.
    pub burst_rate: f64,
    /// Cells flipped per burst, laid out contiguously along one row.
    pub burst_len: usize,
    /// Probability that a strike plants one new stuck-at cell.
    pub stuck_rate: f64,
    /// Hard cap on stuck cells planted over the campaign's lifetime.
    pub max_stuck: usize,
}

impl CampaignConfig {
    /// A quiet environment: occasional correctable flips, nothing permanent.
    pub fn transient_only(rate: f64) -> Self {
        CampaignConfig {
            transient_rate: rate,
            burst_rate: 0.0,
            burst_len: 0,
            stuck_rate: 0.0,
            max_stuck: 0,
        }
    }
}

/// Running totals of what a campaign has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTally {
    /// Transient single-bit flips injected.
    pub transients: u64,
    /// Multi-bit bursts injected.
    pub bursts: u64,
    /// Stuck-at cells planted.
    pub stuck_planted: u64,
    /// Strikes played.
    pub strikes: u64,
}

/// A seeded, replayable source of faults. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    cfg: CampaignConfig,
    state: u64,
    tally: CampaignTally,
}

impl FaultCampaign {
    /// Creates a campaign from a seed and a config.
    pub fn new(seed: u64, cfg: CampaignConfig) -> Self {
        FaultCampaign {
            cfg,
            state: seed,
            tally: CampaignTally::default(),
        }
    }

    /// Derives an independent campaign for `lane` (e.g. a shard index)
    /// without disturbing this campaign's stream.
    pub fn fork(&self, lane: u64) -> FaultCampaign {
        // Mix the lane through one splitmix64 round so lanes 0 and 1 do not
        // produce overlapping streams.
        FaultCampaign::new(self.state ^ mix(lane.wrapping_add(1)), self.cfg)
    }

    /// The campaign's configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// What the campaign has injected so far.
    pub fn tally(&self) -> CampaignTally {
        self.tally
    }

    /// Plays one batch window's worth of faults into `pm`.
    pub fn strike(&mut self, pm: &mut ProtectedMemory) {
        let n = pm.geometry().n();
        self.tally.strikes += 1;

        let flips = self.sample_count(self.cfg.transient_rate);
        for _ in 0..flips {
            let (r, c) = (self.below(n), self.below(n));
            pm.inject_fault(r, c);
            self.tally.transients += 1;
        }

        let bursts = self.sample_count(self.cfg.burst_rate);
        for _ in 0..bursts {
            let r = self.below(n);
            let start = self.below(n);
            for k in 0..self.cfg.burst_len {
                if start + k >= n {
                    break;
                }
                pm.inject_fault(r, start + k);
            }
            self.tally.bursts += 1;
        }

        if (self.tally.stuck_planted as usize) < self.cfg.max_stuck
            && self.uniform() < self.cfg.stuck_rate
        {
            let (r, c) = (self.below(n), self.below(n));
            let value = self.next() & 1 == 1;
            pm.set_stuck(r, c, value);
            self.tally.stuck_planted += 1;
        }
    }

    /// Resolves an expected-events-per-strike rate to a concrete count.
    fn sample_count(&mut self, rate: f64) -> u64 {
        if rate <= 0.0 {
            return 0;
        }
        let whole = rate.floor();
        let frac = rate - whole;
        whole as u64 + u64::from(self.uniform() < frac)
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// splitmix64 output mix.
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BlockGeometry;

    fn memory() -> ProtectedMemory {
        ProtectedMemory::new(BlockGeometry::new(30, 15).unwrap()).unwrap()
    }

    fn storm() -> CampaignConfig {
        CampaignConfig {
            transient_rate: 2.5,
            burst_rate: 0.5,
            burst_len: 3,
            stuck_rate: 0.8,
            max_stuck: 2,
        }
    }

    #[test]
    fn same_seed_replays_the_same_trace() {
        let (mut a, mut b) = (memory(), memory());
        let mut ca = FaultCampaign::new(42, storm());
        let mut cb = FaultCampaign::new(42, storm());
        for _ in 0..20 {
            ca.strike(&mut a);
            cb.strike(&mut b);
        }
        assert_eq!(ca.tally(), cb.tally());
        assert_eq!(a.stuck_cells(), b.stuck_cells());
        for r in 0..30 {
            for c in 0..30 {
                assert_eq!(a.bit(r, c), b.bit(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn forked_lanes_decorrelate() {
        let base = FaultCampaign::new(7, storm());
        let (mut a, mut b) = (memory(), memory());
        let mut ca = base.fork(0);
        let mut cb = base.fork(1);
        for _ in 0..10 {
            ca.strike(&mut a);
            cb.strike(&mut b);
        }
        let same = (0..30)
            .flat_map(|r| (0..30).map(move |c| (r, c)))
            .all(|(r, c)| a.bit(r, c) == b.bit(r, c));
        assert!(!same, "distinct lanes should not replay identical traces");
    }

    #[test]
    fn stuck_cap_is_respected() {
        let mut pm = memory();
        let mut campaign = FaultCampaign::new(3, storm());
        for _ in 0..200 {
            campaign.strike(&mut pm);
        }
        assert_eq!(campaign.tally().stuck_planted, 2);
        assert_eq!(pm.stuck_cells().len(), 2);
    }

    #[test]
    fn zero_rates_leave_memory_untouched() {
        let mut pm = memory();
        let mut campaign = FaultCampaign::new(9, CampaignConfig::transient_only(0.0));
        for _ in 0..50 {
            campaign.strike(&mut pm);
        }
        let t = campaign.tally();
        assert_eq!((t.transients, t.bursts, t.stuck_planted), (0, 0, 0));
        assert!(pm.verify_consistency().is_ok());
    }
}
