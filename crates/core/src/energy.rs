//! Switching-energy estimation for the ECC mechanism.
//!
//! The paper evaluates latency and device counts but leaves energy
//! implicit; this module closes the loop with a simple, fully documented
//! event-energy model so the latency/reliability trade-off can also be
//! read in joules. Per-event constants default to representative values
//! from the memristive-logic literature (MAGIC gate switching dominated by
//! output-memristor SET/RESET transitions, ~100 fJ scale per cell event;
//! CMOS transfer/shift events an order of magnitude below). The absolute
//! calibration is configurable — the *relative* overhead is the result.

use crate::machine::MachineStats;

/// Per-event energy constants in femtojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One MAGIC NOR/NOT gate execution (per participating output cell).
    pub nor_gate_fj: f64,
    /// One cell initialization (SET to LRS).
    pub init_cell_fj: f64,
    /// Driving one bit through the shifters/connection unit.
    pub transfer_bit_fj: f64,
    /// One XOR3 micro-program per lane (8 NORs over an 11-cell lane).
    pub xor3_lane_fj: f64,
}

impl Default for EnergyModel {
    /// Representative constants: 115 fJ per MAGIC gate event, 50 fJ per
    /// init, 5 fJ per transferred bit, and an XOR3 lane as 8 gate events.
    fn default() -> Self {
        EnergyModel {
            nor_gate_fj: 115.0,
            init_cell_fj: 50.0,
            transfer_bit_fj: 5.0,
            xor3_lane_fj: 8.0 * 115.0,
        }
    }
}

/// An energy breakdown in femtojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy of MEM-side gate/init cycles.
    pub mem_fj: f64,
    /// Energy of MEM↔CMEM transfers.
    pub transfer_fj: f64,
    /// Energy of processing-crossbar XOR3 programs.
    pub cmem_fj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_fj(&self) -> f64 {
        self.mem_fj + self.transfer_fj + self.cmem_fj
    }

    /// Fraction of the total spent on ECC maintenance (transfers + CMEM).
    pub fn ecc_fraction(&self) -> f64 {
        let t = self.total_fj();
        if t == 0.0 {
            0.0
        } else {
            (self.transfer_fj + self.cmem_fj) / t
        }
    }
}

impl EnergyModel {
    /// Estimates the energy of a protected-memory run from its statistics.
    ///
    /// `lanes_per_xor3` is the number of written bits each XOR3 program
    /// covers (one lane per bit; up to `n` for a full-width operation).
    pub fn of_stats(&self, stats: &MachineStats, lanes_per_xor3: usize) -> EnergyBreakdown {
        let mem_gate_cycles = stats.mem_cycles.saturating_sub(stats.transfer_cycles);
        EnergyBreakdown {
            // Conservatively bill every MEM cycle as one full-width gate
            // event; callers with exact gate counts can refine.
            mem_fj: mem_gate_cycles as f64 * self.nor_gate_fj,
            transfer_fj: stats.transfer_cycles as f64
                * lanes_per_xor3 as f64
                * self.transfer_bit_fj,
            cmem_fj: stats.pc_xor3_ops as f64 * lanes_per_xor3 as f64 * self.xor3_lane_fj,
        }
    }

    /// Energy of one critical operation relative to a plain gate writing
    /// the same bits — the per-write energy price of the mechanism. With
    /// the default constants this is ≈ 17×: two 8-NOR XOR3 programs per
    /// written bit dwarf the single gate event they protect. (Latency
    /// hides this behind pipelined processing crossbars; energy cannot.)
    pub fn critical_op_overhead_factor(&self, lanes: usize) -> f64 {
        let plain = self.nor_gate_fj * lanes as f64;
        let ecc =
            2.0 * lanes as f64 * self.transfer_bit_fj + 2.0 * lanes as f64 * self.xor3_lane_fj;
        (plain + ecc) / plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BlockGeometry;
    use crate::machine::ProtectedMemory;
    use pimecc_xbar::LineSet;

    #[test]
    fn zero_stats_zero_energy() {
        let b = EnergyModel::default().of_stats(&MachineStats::default(), 4);
        assert_eq!(b.total_fj(), 0.0);
        assert_eq!(b.ecc_fraction(), 0.0);
    }

    #[test]
    fn critical_ops_show_up_as_ecc_energy() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let mut pm = ProtectedMemory::new(geom).unwrap();
        pm.exec_init_rows(&[0], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[1, 2], 0, &LineSet::All).unwrap();
        let b = EnergyModel::default().of_stats(pm.stats(), 3);
        assert!(b.cmem_fj > 0.0);
        assert!(b.transfer_fj > 0.0);
        assert!(b.ecc_fraction() > 0.0 && b.ecc_fraction() < 1.0);
    }

    #[test]
    fn overhead_factor_is_roughly_seventeen_x() {
        // Two 8-NOR XOR3s per written bit: (115 + 2*5 + 2*920)/115 ≈ 17.1.
        let f = EnergyModel::default().critical_op_overhead_factor(68);
        assert!(f > 10.0 && f < 25.0, "got {f}");
        // The factor is lane-independent: both sides scale with the bits.
        let f1 = EnergyModel::default().critical_op_overhead_factor(1);
        assert!((f - f1).abs() < 1e-9);
    }

    #[test]
    fn breakdown_components_sum() {
        let b = EnergyBreakdown {
            mem_fj: 1.0,
            transfer_fj: 2.0,
            cmem_fj: 3.0,
        };
        assert_eq!(b.total_fj(), 6.0);
        assert!((b.ecc_fraction() - 5.0 / 6.0).abs() < 1e-12);
    }
}
