//! A multi-crossbar memory: the 1 GB array of the paper's Figure 6 setup,
//! built from independent [`ProtectedMemory`] crossbars with a global
//! address space and a periodic full-memory check.
//!
//! The mMPU organization the paper assumes divides the memory into banks
//! of crossbars; reliability composes multiplicatively because blocks and
//! crossbars are independent. This wrapper provides the executable
//! counterpart: linear bit addressing across crossbars, global fault
//! injection, and an all-crossbars checking pass.

use crate::geometry::BlockGeometry;
use crate::machine::{CheckReport, ProtectedMemory};
use crate::Result;

/// A bank of `count` independent n×n protected crossbars with a linear
/// bit address space of `count · n²` bits.
///
/// # Example
///
/// ```
/// use pimecc_core::{BlockGeometry, MemoryArray};
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let geom = BlockGeometry::new(30, 15)?;
/// let mut mem = MemoryArray::new(geom, 4)?;
/// assert_eq!(mem.capacity_bits(), 4 * 30 * 30);
/// mem.inject_fault_at(1800); // lands in crossbar 2
/// let report = mem.check_all()?;
/// assert_eq!(report.corrected, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryArray {
    geom: BlockGeometry,
    crossbars: Vec<ProtectedMemory>,
}

impl MemoryArray {
    /// Creates `count` zeroed crossbars of geometry `geom`.
    ///
    /// # Errors
    ///
    /// Propagates machine construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(geom: BlockGeometry, count: usize) -> Result<Self> {
        assert!(count > 0, "need at least one crossbar");
        let crossbars = (0..count)
            .map(|_| ProtectedMemory::new(geom))
            .collect::<Result<Vec<_>>>()?;
        Ok(MemoryArray { geom, crossbars })
    }

    /// Sizes an array to hold at least `bits` data bits (the Figure 6
    /// construction: 1 GB = `8·2³⁰` bits of n×n crossbars).
    ///
    /// # Errors
    ///
    /// Propagates machine construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn with_capacity_bits(geom: BlockGeometry, bits: u64) -> Result<Self> {
        assert!(bits > 0, "capacity must be positive");
        let per = (geom.n() * geom.n()) as u64;
        Self::new(geom, bits.div_ceil(per) as usize)
    }

    /// Number of crossbars.
    pub fn crossbar_count(&self) -> usize {
        self.crossbars.len()
    }

    /// Total data capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.crossbars.len() * self.geom.n() * self.geom.n()
    }

    /// The shared crossbar geometry.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// Borrow of one crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn crossbar(&self, index: usize) -> &ProtectedMemory {
        &self.crossbars[index]
    }

    /// Mutable borrow of one crossbar (for running computations on it).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn crossbar_mut(&mut self, index: usize) -> &mut ProtectedMemory {
        &mut self.crossbars[index]
    }

    /// Decomposes a linear bit address into `(crossbar, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond [`MemoryArray::capacity_bits`].
    pub fn locate(&self, address: usize) -> (usize, usize, usize) {
        assert!(address < self.capacity_bits(), "address out of range");
        let n = self.geom.n();
        let per = n * n;
        (address / per, (address % per) / n, address % n)
    }

    /// Reads the bit at a linear address.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn bit_at(&self, address: usize) -> bool {
        let (x, r, c) = self.locate(address);
        self.crossbars[x].bit(r, c)
    }

    /// Injects a soft error at a linear address.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn inject_fault_at(&mut self, address: usize) {
        let (x, r, c) = self.locate(address);
        self.crossbars[x].inject_fault(r, c);
    }

    /// The periodic full-memory check of the paper's §V-A model: every
    /// covered block of every crossbar is verified and repaired.
    ///
    /// # Errors
    ///
    /// Propagates per-crossbar check errors (none in practice).
    pub fn check_all(&mut self) -> Result<CheckReport> {
        let mut total = CheckReport::default();
        for xb in &mut self.crossbars {
            total += xb.check_all()?;
        }
        Ok(total)
    }

    /// True when every crossbar's check-bits match its data.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        for (i, xb) in self.crossbars.iter().enumerate() {
            xb.verify_consistency()
                .map_err(|e| format!("crossbar {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> MemoryArray {
        MemoryArray::new(BlockGeometry::new(15, 5).unwrap(), 3).unwrap()
    }

    #[test]
    fn capacity_and_layout() {
        let mem = array();
        assert_eq!(mem.crossbar_count(), 3);
        assert_eq!(mem.capacity_bits(), 3 * 225);
        assert_eq!(mem.locate(0), (0, 0, 0));
        assert_eq!(mem.locate(224), (0, 14, 14));
        assert_eq!(mem.locate(225), (1, 0, 0));
        assert_eq!(mem.locate(3 * 225 - 1), (2, 14, 14));
    }

    #[test]
    fn with_capacity_rounds_up() {
        let geom = BlockGeometry::new(15, 5).unwrap();
        let mem = MemoryArray::with_capacity_bits(geom, 500).unwrap();
        assert_eq!(mem.crossbar_count(), 3); // ceil(500 / 225)
    }

    #[test]
    fn faults_across_crossbars_all_corrected() {
        let mut mem = array();
        mem.inject_fault_at(7);
        mem.inject_fault_at(300);
        mem.inject_fault_at(600);
        assert!(mem.bit_at(7));
        let report = mem.check_all().unwrap();
        assert_eq!(report.corrected, 3);
        assert_eq!(report.uncorrectable, 0);
        assert!(!mem.bit_at(7), "restored to zero");
        assert!(mem.verify_consistency().is_ok());
        assert_eq!(report.checked, 3 * 9);
    }

    #[test]
    fn per_crossbar_isolation() {
        let mut mem = array();
        // Two faults in the SAME block of crossbar 0: uncorrectable there,
        // but crossbar 1 corrects its single fault independently.
        mem.inject_fault_at(0);
        mem.inject_fault_at(16); // (1,1) same 5x5 block as (0,0)
        mem.inject_fault_at(225);
        let report = mem.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(report.corrected, 1);
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn out_of_range_address_panics() {
        let mem = array();
        let _ = mem.bit_at(mem.capacity_bits());
    }

    #[test]
    fn computation_on_one_crossbar_keeps_array_consistent() {
        use pimecc_xbar::LineSet;
        let mut mem = array();
        let xb = mem.crossbar_mut(1);
        xb.exec_init_rows(&[2], &LineSet::All).unwrap();
        xb.exec_nor_rows(&[0, 1], 2, &LineSet::All).unwrap();
        assert!(mem.verify_consistency().is_ok());
        assert!(mem.crossbar(1).stats().critical_ops > 0);
        assert_eq!(mem.crossbar(0).stats().critical_ops, 0);
    }
}
