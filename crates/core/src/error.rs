//! Error type of the core ECC crate.

use pimecc_xbar::XbarError;
use std::fmt;

/// Errors raised by the diagonal-ECC architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Geometry constraint violated: `n` must be a positive multiple of `m`.
    DimensionNotDivisible {
        /// Crossbar dimension.
        n: usize,
        /// Block dimension.
        m: usize,
    },
    /// Geometry constraint violated: `m` must be odd (otherwise two
    /// wrap-around diagonals can intersect twice and single errors are not
    /// uniquely locatable — paper §III footnote 1).
    BlockDimensionEven {
        /// Block dimension.
        m: usize,
    },
    /// Geometry constraint violated: `m` must be at least 3.
    BlockDimensionTooSmall {
        /// Block dimension.
        m: usize,
    },
    /// An index exceeded the crossbar dimensions.
    OutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Crossbar dimension.
        n: usize,
    },
    /// A block contains more than one error; the per-block code is only
    /// single-error-correcting.
    Uncorrectable {
        /// Block row index.
        block_row: usize,
        /// Block column index.
        block_col: usize,
    },
    /// An underlying MAGIC operation was illegal.
    Xbar(XbarError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionNotDivisible { n, m } => {
                write!(
                    f,
                    "crossbar dimension {n} is not a multiple of block dimension {m}"
                )
            }
            CoreError::BlockDimensionEven { m } => {
                write!(
                    f,
                    "block dimension {m} must be odd for unique diagonal intersection"
                )
            }
            CoreError::BlockDimensionTooSmall { m } => {
                write!(f, "block dimension {m} must be at least 3")
            }
            CoreError::OutOfBounds { row, col, n } => {
                write!(f, "cell ({row}, {col}) out of bounds for {n}x{n} crossbar")
            }
            CoreError::Uncorrectable {
                block_row,
                block_col,
            } => {
                write!(
                    f,
                    "block ({block_row}, {block_col}) has an uncorrectable error pattern"
                )
            }
            CoreError::Xbar(e) => write!(f, "crossbar operation failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Xbar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbarError> for CoreError {
    fn from(e: XbarError) -> Self {
        CoreError::Xbar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let cases = vec![
            CoreError::DimensionNotDivisible { n: 10, m: 3 },
            CoreError::BlockDimensionEven { m: 4 },
            CoreError::BlockDimensionTooSmall { m: 1 },
            CoreError::OutOfBounds {
                row: 9,
                col: 9,
                n: 5,
            },
            CoreError::Uncorrectable {
                block_row: 1,
                block_col: 2,
            },
            CoreError::Xbar(XbarError::NoInputs),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn xbar_error_converts_and_sources() {
        use std::error::Error;
        let e: CoreError = XbarError::NoInputs.into();
        assert!(e.source().is_some());
        let e2 = CoreError::BlockDimensionEven { m: 2 };
        assert!(e2.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
