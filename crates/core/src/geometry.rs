//! Diagonal index arithmetic for the blocked crossbar.
//!
//! The n×n MEM is divided into an imaginary grid of m×m blocks (m odd).
//! Within a block, every cell `(r, c)` lies on exactly one *leading*
//! wrap-around diagonal `ℓ = (r + c) mod m` (bottom-left to top-right) and
//! one *counter* diagonal `κ = (r − c) mod m` (bottom-right to top-left).
//! Because `m` is odd, 2 is invertible modulo `m`, so the pair `(ℓ, κ)`
//! identifies the cell uniquely:
//!
//! ```text
//! r = (ℓ + κ) · 2⁻¹ mod m,    c = (ℓ − κ) · 2⁻¹ mod m
//! ```
//!
//! This is the paper's footnote-1 requirement and the foundation of its
//! single-error correction: a flipped bit leaves a signature on exactly one
//! leading and one counter diagonal, whose intersection is the bit.

use crate::error::CoreError;
use crate::Result;

/// The blocked-crossbar geometry: crossbar dimension `n`, block dimension
/// `m`, and the modular arithmetic connecting cells to diagonals.
///
/// # Example
///
/// ```
/// use pimecc_core::BlockGeometry;
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let g = BlockGeometry::new(1020, 15)?; // the paper's configuration
/// assert_eq!(g.blocks_per_side(), 68);
/// let (lead, counter) = g.diagonals(7, 11);
/// assert_eq!(g.locate(lead, counter), (7, 11));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockGeometry {
    n: usize,
    m: usize,
    /// Multiplicative inverse of 2 modulo `m` (= (m+1)/2 for odd m).
    inv2: usize,
}

impl BlockGeometry {
    /// Creates a geometry for an `n×n` crossbar with `m×m` blocks.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BlockDimensionTooSmall`] if `m < 3`;
    /// * [`CoreError::BlockDimensionEven`] if `m` is even;
    /// * [`CoreError::DimensionNotDivisible`] if `n` is zero or not a
    ///   multiple of `m`.
    pub fn new(n: usize, m: usize) -> Result<Self> {
        if m < 3 {
            return Err(CoreError::BlockDimensionTooSmall { m });
        }
        if m % 2 == 0 {
            return Err(CoreError::BlockDimensionEven { m });
        }
        if n == 0 || n % m != 0 {
            return Err(CoreError::DimensionNotDivisible { n, m });
        }
        Ok(BlockGeometry {
            n,
            m,
            inv2: (m + 1) / 2,
        })
    }

    /// The paper's configuration: `n = 1020`, `m = 15`.
    pub fn paper() -> Self {
        Self::new(1020, 15).expect("paper configuration is valid")
    }

    /// Crossbar dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block dimension `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of blocks along one side (`n / m`).
    pub fn blocks_per_side(&self) -> usize {
        self.n / self.m
    }

    /// Total number of blocks (`(n/m)²`).
    pub fn block_count(&self) -> usize {
        self.blocks_per_side() * self.blocks_per_side()
    }

    /// The block `(block_row, block_col)` containing global cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of bounds.
    pub fn block_of(&self, r: usize, c: usize) -> (usize, usize) {
        debug_assert!(r < self.n && c < self.n);
        (r / self.m, c / self.m)
    }

    /// Block-local coordinates of global cell `(r, c)`.
    pub fn local_of(&self, r: usize, c: usize) -> (usize, usize) {
        debug_assert!(r < self.n && c < self.n);
        (r % self.m, c % self.m)
    }

    /// Leading diagonal index of a *block-local* cell: `(r + c) mod m`.
    pub fn leading(&self, local_r: usize, local_c: usize) -> usize {
        debug_assert!(local_r < self.m && local_c < self.m);
        (local_r + local_c) % self.m
    }

    /// Counter diagonal index of a *block-local* cell: `(r − c) mod m`.
    pub fn counter(&self, local_r: usize, local_c: usize) -> usize {
        debug_assert!(local_r < self.m && local_c < self.m);
        (local_r + self.m - local_c) % self.m
    }

    /// Both diagonal indices of a *global* cell, `(leading, counter)`.
    pub fn diagonals(&self, r: usize, c: usize) -> (usize, usize) {
        let (lr, lc) = self.local_of(r, c);
        (self.leading(lr, lc), self.counter(lr, lc))
    }

    /// Inverts [`BlockGeometry::leading`]/[`BlockGeometry::counter`]:
    /// the unique block-local cell lying on leading diagonal `lead` and
    /// counter diagonal `counter`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either index is ≥ `m`.
    pub fn locate(&self, lead: usize, counter: usize) -> (usize, usize) {
        debug_assert!(lead < self.m && counter < self.m);
        let r = (lead + counter) * self.inv2 % self.m;
        let c = (lead + self.m - counter) * self.inv2 % self.m;
        (r, c)
    }

    /// Iterates over the block-local cells of leading diagonal `lead`.
    pub fn leading_cells(&self, lead: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.m;
        (0..m).map(move |r| (r, (lead + m - r) % m))
    }

    /// Iterates over the block-local cells of counter diagonal `counter`.
    pub fn counter_cells(&self, counter: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let m = self.m;
        (0..m).map(move |r| (r, (r + m - counter) % m))
    }

    /// Validates that a global coordinate pair is in bounds.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] when either index is ≥ `n`.
    pub fn check_bounds(&self, r: usize, c: usize) -> Result<()> {
        if r >= self.n || c >= self.n {
            Err(CoreError::OutOfBounds {
                row: r,
                col: c,
                n: self.n,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let g = BlockGeometry::paper();
        assert_eq!(g.n(), 1020);
        assert_eq!(g.m(), 15);
        assert_eq!(g.blocks_per_side(), 68);
        assert_eq!(g.block_count(), 68 * 68);
    }

    #[test]
    fn constructor_rejects_bad_geometries() {
        assert!(matches!(
            BlockGeometry::new(10, 2),
            Err(CoreError::BlockDimensionTooSmall { m: 2 })
        ));
        assert!(matches!(
            BlockGeometry::new(12, 4),
            Err(CoreError::BlockDimensionEven { m: 4 })
        ));
        assert!(matches!(
            BlockGeometry::new(10, 3),
            Err(CoreError::DimensionNotDivisible { n: 10, m: 3 })
        ));
        assert!(matches!(
            BlockGeometry::new(0, 3),
            Err(CoreError::DimensionNotDivisible { n: 0, m: 3 })
        ));
        assert!(BlockGeometry::new(9, 3).is_ok());
    }

    #[test]
    fn diagonals_round_trip_for_every_cell() {
        for m in [3usize, 5, 7, 15] {
            let g = BlockGeometry::new(m * 2, m).unwrap();
            for r in 0..m {
                for c in 0..m {
                    let (l, k) = (g.leading(r, c), g.counter(r, c));
                    assert_eq!(g.locate(l, k), (r, c), "m={m} cell ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn diagonal_pairs_are_unique_within_a_block() {
        let g = BlockGeometry::new(15, 15).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..15 {
            for c in 0..15 {
                assert!(seen.insert(g.diagonals(r, c)), "duplicate at ({r},{c})");
            }
        }
        assert_eq!(seen.len(), 225);
    }

    #[test]
    fn even_m_would_break_uniqueness() {
        // Demonstrate the footnote-1 failure mode directly: with m = 4 the
        // map (r+c, r-c) mod m collides — e.g. (0,0) and (2,2).
        let m = 4usize;
        let diag = |r: usize, c: usize| ((r + c) % m, (r + m - c) % m);
        assert_eq!(diag(0, 0), diag(2, 2));
    }

    #[test]
    fn each_diagonal_has_m_cells_hitting_every_row_once() {
        let g = BlockGeometry::new(15, 5).unwrap();
        for d in 0..5 {
            let lead: Vec<_> = g.leading_cells(d).collect();
            assert_eq!(lead.len(), 5);
            let rows: std::collections::HashSet<_> = lead.iter().map(|&(r, _)| r).collect();
            let cols: std::collections::HashSet<_> = lead.iter().map(|&(_, c)| c).collect();
            assert_eq!(rows.len(), 5, "one cell per row");
            assert_eq!(cols.len(), 5, "one cell per column");
            for &(r, c) in &lead {
                assert_eq!(g.leading(r, c), d);
            }
            let counter: Vec<_> = g.counter_cells(d).collect();
            for &(r, c) in &counter {
                assert_eq!(g.counter(r, c), d);
            }
        }
    }

    #[test]
    fn row_parallel_write_touches_each_diagonal_once() {
        // The paper's central claim: a column write across all rows of a
        // block touches every leading diagonal at most once (same for
        // counter). Verify per block.
        let g = BlockGeometry::new(45, 9).unwrap();
        for col in 0..45 {
            for block_row in 0..5 {
                let mut leads = std::collections::HashSet::new();
                let mut counters = std::collections::HashSet::new();
                for local_r in 0..9 {
                    let r = block_row * 9 + local_r;
                    let (l, k) = g.diagonals(r, col);
                    assert!(leads.insert(l), "lead diag {l} hit twice in col {col}");
                    assert!(counters.insert(k), "counter diag {k} hit twice");
                }
            }
        }
    }

    #[test]
    fn block_and_local_coordinates() {
        let g = BlockGeometry::new(30, 15).unwrap();
        assert_eq!(g.block_of(16, 2), (1, 0));
        assert_eq!(g.local_of(16, 2), (1, 2));
        assert_eq!(g.block_of(0, 29), (0, 1));
    }

    #[test]
    fn bounds_checking() {
        let g = BlockGeometry::new(9, 3).unwrap();
        assert!(g.check_bounds(8, 8).is_ok());
        assert!(matches!(
            g.check_bounds(9, 0),
            Err(CoreError::OutOfBounds { .. })
        ));
    }
}
