//! The integrated protected memory: a MAGIC crossbar (MEM) whose writes to
//! ECC-covered blocks transparently maintain the diagonal check-bits in the
//! CMEM, with fault injection, per-block checking and correction.
//!
//! The machine reproduces the paper's critical-operation protocol (§IV):
//!
//! 1. cancel the old data's effect on the check-bits,
//! 2. perform the MAGIC operation in the MEM,
//! 3. add the new data's effect on the check-bits,
//!
//! where steps 1 and 3 are XOR3 updates executed in processing crossbars
//! fed through the barrel shifters. Functionally the two XORs collapse to
//! `check ⊕= old ⊕ new` per touched diagonal; the cycle cost of the full
//! protocol is tracked in [`MachineStats`].
//!
//! Coverage is per *block*: function inputs and outputs live in covered
//! blocks (checked and continuously updated); intermediate scratch blocks
//! can be marked uncovered, matching the paper's model where only function
//! inputs/outputs are protected.
//!
//! # Simulation engines
//!
//! The hot path is *word-diff*: before a parallel operation the touched
//! line words are snapshotted, and afterwards `old XOR new` yields a packed
//! change mask whose set bits — pre-masked by per-geometry coverage words —
//! are the only cells whose Leading/Counter check-bits flip, via a
//! precomputed `(leading, counter)` diagonal-index table built once per
//! [`BlockGeometry`] and cached process-wide. Block checking, scrubbing and
//! the consistency oracle run on packed block-row words through
//! [`DiagonalCode::encode_words`]. The original cell-at-a-time loops are
//! retained under [`SimEngine::ScalarReference`]
//! (see [`ProtectedMemory::set_engine`]) as the differential baseline; both
//! engines produce bit-identical state, [`MachineStats`] and
//! [`CheckReport`]s — only host wall-time differs.

use crate::cmem::CheckMemory;
use crate::code::{DiagonalCode, ErrorLocation};
use crate::error::CoreError;
use crate::geometry::BlockGeometry;
use crate::shifter::Family;
use crate::Result;
use pimecc_xbar::{
    transpose64, BitGrid, Crossbar, FusedColsPlan, FusedRowsPlan, LineMask, LineSet, ParallelStep,
    SimEngine, XbarError, MAX_FUSED_STRIDE,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cycle/event accounting for the protected memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MachineStats {
    /// MEM-side clock cycles (gates, inits, transfers).
    pub mem_cycles: u64,
    /// MEM cycles that were data transfers to/from the CMEM datapath.
    pub transfer_cycles: u64,
    /// XOR3 micro-programs executed in processing crossbars (8 NORs each).
    pub pc_xor3_ops: u64,
    /// Critical operations executed (writes into covered blocks).
    pub critical_ops: u64,
    /// Block checks performed.
    pub blocks_checked: u64,
    /// Errors corrected (data or check-bit).
    pub errors_corrected: u64,
    /// Uncorrectable (multi-error) blocks encountered.
    pub errors_uncorrectable: u64,
}

impl std::ops::Sub for MachineStats {
    type Output = MachineStats;

    /// Saturating per-counter difference — `after - before` yields the
    /// stats of everything that happened between two snapshots, which is
    /// how batched executions report their own share of the machine's
    /// activity.
    fn sub(self, earlier: MachineStats) -> MachineStats {
        MachineStats {
            mem_cycles: self.mem_cycles.saturating_sub(earlier.mem_cycles),
            transfer_cycles: self.transfer_cycles.saturating_sub(earlier.transfer_cycles),
            pc_xor3_ops: self.pc_xor3_ops.saturating_sub(earlier.pc_xor3_ops),
            critical_ops: self.critical_ops.saturating_sub(earlier.critical_ops),
            blocks_checked: self.blocks_checked.saturating_sub(earlier.blocks_checked),
            errors_corrected: self
                .errors_corrected
                .saturating_sub(earlier.errors_corrected),
            errors_uncorrectable: self
                .errors_uncorrectable
                .saturating_sub(earlier.errors_uncorrectable),
        }
    }
}

impl std::ops::Add for MachineStats {
    type Output = MachineStats;

    /// Per-counter sum — how a multi-crossbar layer (a device pool, a
    /// sharded cluster) folds the activity of its members into one
    /// aggregate account.
    fn add(self, other: MachineStats) -> MachineStats {
        MachineStats {
            mem_cycles: self.mem_cycles + other.mem_cycles,
            transfer_cycles: self.transfer_cycles + other.transfer_cycles,
            pc_xor3_ops: self.pc_xor3_ops + other.pc_xor3_ops,
            critical_ops: self.critical_ops + other.critical_ops,
            blocks_checked: self.blocks_checked + other.blocks_checked,
            errors_corrected: self.errors_corrected + other.errors_corrected,
            errors_uncorrectable: self.errors_uncorrectable + other.errors_uncorrectable,
        }
    }
}

impl std::ops::AddAssign for MachineStats {
    /// In-place per-counter sum (see the [`Add`](std::ops::Add) impl).
    fn add_assign(&mut self, other: MachineStats) {
        *self = *self + other;
    }
}

/// Outcome summary of a checking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Blocks examined.
    pub checked: usize,
    /// Single errors corrected (data or check-bits).
    pub corrected: usize,
    /// Blocks left with detected-but-uncorrectable patterns.
    pub uncorrectable: usize,
}

impl std::ops::AddAssign for CheckReport {
    /// Folds another pass's counts into this report.
    fn add_assign(&mut self, other: CheckReport) {
        self.checked += other.checked;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }
}

/// Precomputed diagonal indices for one [`BlockGeometry`]: entry
/// `[local_row * n + col]` is the Leading (resp. Counter) diagonal of any
/// cell whose row is `local_row` modulo `m` and whose global column is
/// `col`. Replaces the per-cell `block_of`/`local_of`/`leading`/`counter`
/// modular arithmetic on the word-diff hot path.
#[derive(Debug)]
struct DiagTables {
    lead: Vec<u16>,
    counter: Vec<u16>,
}

impl DiagTables {
    fn build(geom: &BlockGeometry) -> DiagTables {
        let (n, m) = (geom.n(), geom.m());
        assert!(m <= u16::MAX as usize, "diagonal index exceeds table width");
        let mut lead = vec![0u16; m * n];
        let mut counter = vec![0u16; m * n];
        for lr in 0..m {
            for c in 0..n {
                lead[lr * n + c] = geom.leading(lr, c % m) as u16;
                counter[lr * n + c] = geom.counter(lr, c % m) as u16;
            }
        }
        DiagTables { lead, counter }
    }

    /// The table for `geom`, built once per distinct `(n, m)` and shared
    /// process-wide — every shard of a cluster references one copy.
    fn cached(geom: &BlockGeometry) -> Arc<DiagTables> {
        type Cache = Mutex<HashMap<(usize, usize), Arc<DiagTables>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(
            map.entry((geom.n(), geom.m()))
                .or_insert_with(|| Arc::new(DiagTables::build(geom))),
        )
    }
}

/// Which crossbar dimension a single-line cell write runs along (the
/// axis-generic core of `write_row_cells` / `write_col_cells`).
#[derive(Clone, Copy)]
enum LineAxis {
    Row,
    Col,
}

impl LineAxis {
    /// Maps `(line, cross)` to global `(row, col)`.
    #[inline]
    fn cell(self, line: usize, cross: usize) -> (usize, usize) {
        match self {
            LineAxis::Row => (line, cross),
            LineAxis::Col => (cross, line),
        }
    }
}

/// One pinned cell of the stuck-at fault plane: `(row, col)` of the MEM is
/// wedged at `value` regardless of what the controller drives through it —
/// the permanent failure mode of a worn-out memristor, which no scrub can
/// repair (see [`ProtectedMemory::set_stuck`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// MEM row of the pinned cell.
    pub row: usize,
    /// MEM column of the pinned cell.
    pub col: usize,
    /// The value the cell is physically wedged at.
    pub value: bool,
    /// The value the controller last drove — what the check-bits encode.
    intended: bool,
}

/// A MAGIC crossbar with continuously maintained diagonal ECC.
///
/// See the crate-level example. All `exec_*` methods mirror the raw
/// [`Crossbar`] API; criticality (whether the ECC must be updated) is
/// decided automatically from the coverage map of the written cells.
#[derive(Clone)]
pub struct ProtectedMemory {
    geom: BlockGeometry,
    code: DiagonalCode,
    mem: Crossbar,
    cmem: CheckMemory,
    /// Coverage per block, indexed `[block_row * bps + block_col]`.
    covered: Vec<bool>,
    /// The stuck-at fault plane, sorted by `(row, col)`. Driven operations
    /// run against the *intended* values (the ECC maintenance diffs and the
    /// gate dynamics both see what the controller drives); the plane then
    /// re-asserts each wedged value, so checks and readback see the faulted
    /// array. A "correction" write-back into a pinned cell is refused and
    /// the verdict reclassified uncorrectable — hard faults are detected
    /// anew by every check until the line is retired by a layer above.
    stuck: Vec<StuckCell>,
    /// Whether the plane currently asserts the stuck values (`true` outside
    /// driven operations). Guards re-entrant clamping: the batched writers
    /// call the per-line writers internally.
    stuck_clamped: bool,
    /// When set, every critical operation first ECC-checks the blocks it
    /// is about to overwrite (closes the §III false-positive window at the
    /// price of a check per write — the "locally decodable codes" future
    /// work of the paper, realized with the hardware already present).
    check_on_critical: bool,
    stats: MachineStats,
    engine: SimEngine,
    /// Shared diagonal-index table (see [`DiagTables`]).
    tables: Arc<DiagTables>,
    /// Per block-row: packed mask of the columns lying in covered blocks,
    /// flattened `[block_row * stride + word]`.
    covered_row_masks: Vec<u64>,
    /// Per block-column: packed mask of the rows lying in covered blocks,
    /// flattened `[block_col * stride + word]`.
    covered_col_masks: Vec<u64>,
    /// `0..blocks_per_side` — the full block-index list handed to the
    /// rotate-XOR helpers when a whole line was touched.
    all_blocks: Vec<usize>,
    /// True while every block is covered (the default policy) — lets the
    /// hot paths skip coverage-mask loads entirely.
    fully_covered: bool,
    // Reusable scratch for the word-diff path (never part of observable
    // state; reused across operations so the steady state allocates
    // nothing).
    mask_buf: LineMask,
    colmask_buf: Vec<u64>,
    widx_buf: Vec<usize>,
    line_buf: Vec<usize>,
    old_buf: Vec<u64>,
    new_buf: Vec<u64>,
    blockrow_buf: Vec<u64>,
    blkrow_buf: Vec<usize>,
    blkcol_buf: Vec<usize>,
    /// Per-(block-row, block-column) ECC accumulators for the fused
    /// executors and batched loads — `(leading, pre-reversal counter)`
    /// pairs, flat.
    eccacc_buf: Vec<(u64, u64)>,
    /// Transpose-staging value/mask planes for batched column loads,
    /// row-major `[row * stride + word]`; only touched rows are dirtied
    /// and re-cleared.
    stage_val: Vec<u64>,
    stage_msk: Vec<u64>,
    /// Packed mask of the rows the staging planes currently hold.
    stage_rows: Vec<u64>,
    /// Sorted-line scratch for batched row loads.
    sorted_buf: Vec<usize>,
    /// Per-rotation field masks of the SWAR check sweep, `m * stride`
    /// words each: `rot_hi[rot]` selects the bits a left-shift by `rot`
    /// keeps inside its m-bit field, `rot_lo[rot]` the bits wrapped in
    /// from the right. Built lazily per geometry.
    rot_hi: Vec<u64>,
    rot_lo: Vec<u64>,
    /// Whole-row parity accumulators of the SWAR check sweep (`stride`
    /// words each: every block column's m-bit field side by side).
    acc_lead: Vec<u64>,
    acc_q: Vec<u64>,
}

impl ProtectedMemory {
    /// Creates an all-zero protected memory (data and check-bits
    /// consistent), with every block covered.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`BlockGeometry`]; the `Result`
    /// reserves room for configuration validation.
    pub fn new(geom: BlockGeometry) -> Result<Self> {
        let tables = DiagTables::cached(&geom);
        let mut pm = ProtectedMemory {
            geom,
            code: DiagonalCode::new(geom),
            mem: Crossbar::new(geom.n(), geom.n()),
            cmem: CheckMemory::new(geom),
            covered: vec![true; geom.block_count()],
            stuck: Vec::new(),
            stuck_clamped: true,
            check_on_critical: false,
            stats: MachineStats::default(),
            engine: SimEngine::default(),
            tables,
            covered_row_masks: Vec::new(),
            covered_col_masks: Vec::new(),
            all_blocks: (0..geom.blocks_per_side()).collect(),
            fully_covered: true,
            mask_buf: LineMask::new(geom.n()),
            colmask_buf: Vec::new(),
            widx_buf: Vec::new(),
            line_buf: Vec::new(),
            old_buf: Vec::new(),
            new_buf: Vec::new(),
            blockrow_buf: Vec::new(),
            blkrow_buf: Vec::new(),
            blkcol_buf: Vec::new(),
            eccacc_buf: Vec::new(),
            stage_val: Vec::new(),
            stage_msk: Vec::new(),
            stage_rows: Vec::new(),
            sorted_buf: Vec::new(),
            rot_hi: Vec::new(),
            rot_lo: Vec::new(),
            acc_lead: Vec::new(),
            acc_q: Vec::new(),
        };
        pm.rebuild_cover_masks();
        Ok(pm)
    }

    /// Words per line of the n×n MEM.
    #[inline]
    fn stride(&self) -> usize {
        self.geom.n().div_ceil(64)
    }

    /// Selects the simulation engine (default:
    /// [`SimEngine::WordParallel`]); forwarded to the underlying MEM
    /// crossbar. Both engines are bit-identical in state, stats and
    /// reports.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.engine = engine;
        self.mem.set_engine(engine);
    }

    /// The simulation engine in force.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// Enables or disables the pre-write ECC check of critical
    /// operations. Off by default (the paper's configuration, which
    /// accepts the rare false positive documented in its §III).
    pub fn set_check_on_critical(&mut self, enabled: bool) {
        self.check_on_critical = enabled;
    }

    /// Whether pre-write checking is enabled.
    pub fn check_on_critical(&self) -> bool {
        self.check_on_critical
    }

    /// Rebuilds the packed coverage masks from the per-block coverage map
    /// (called whenever coverage changes).
    fn rebuild_cover_masks(&mut self) {
        self.fully_covered = self.covered.iter().all(|&c| c);
        let (m, bps, stride) = (self.geom.m(), self.geom.blocks_per_side(), self.stride());
        self.covered_row_masks.clear();
        self.covered_row_masks.resize(bps * stride, 0);
        self.covered_col_masks.clear();
        self.covered_col_masks.resize(bps * stride, 0);
        for br in 0..bps {
            for bc in 0..bps {
                if !self.covered[br * bps + bc] {
                    continue;
                }
                set_word_range(
                    &mut self.covered_row_masks[br * stride..(br + 1) * stride],
                    bc * m..(bc + 1) * m,
                );
                set_word_range(
                    &mut self.covered_col_masks[bc * stride..(bc + 1) * stride],
                    br * m..(br + 1) * m,
                );
            }
        }
    }

    /// ECC-checks the distinct covered blocks containing `cells` (the
    /// pre-write verification pass of the scalar reference).
    fn precheck_blocks(&mut self, cells: &[(usize, usize)]) -> Result<()> {
        let mut blocks: Vec<(usize, usize)> = cells
            .iter()
            .map(|&(r, c)| self.geom.block_of(r, c))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        for (br, bc) in blocks {
            if self.covered[self.block_index(br, bc)] {
                self.check_block(br, bc)?;
            }
        }
        Ok(())
    }

    /// ECC-checks the covered blocks of the rectangle
    /// `blkrow_buf × blkcol_buf` (both pre-sorted ascending) — the
    /// word-path pre-write pass. Parallel operations always touch
    /// rectangles of cells, so the block set is exactly this cross
    /// product, visited in the same `(block_row, block_col)` order as the
    /// scalar reference.
    fn precheck_rect(&mut self) -> Result<()> {
        for i in 0..self.blkrow_buf.len() {
            let br = self.blkrow_buf[i];
            for j in 0..self.blkcol_buf.len() {
                let bc = self.blkcol_buf[j];
                if self.covered[self.block_index(br, bc)] {
                    self.check_block(br, bc)?;
                }
            }
        }
        Ok(())
    }

    /// Fills `blkrow_buf` with the distinct block-rows of the selected
    /// lines in `line_buf` (which need not be sorted).
    fn fill_block_rows_from_lines(&mut self) {
        let m = self.geom.m();
        self.blkrow_buf.clear();
        self.blkrow_buf.extend(self.line_buf.iter().map(|&r| r / m));
        self.blkrow_buf.sort_unstable();
        self.blkrow_buf.dedup();
    }

    /// Fills `blkcol_buf` with every block-column overlapping a non-zero
    /// word of `colmask_buf` (ascending). A superset of the exact touched
    /// set at word granularity — harmless for the diff sweeps, which skip
    /// empty segments, and much cheaper than walking every set bit.
    fn fill_block_cols_approx(&mut self) {
        let m = self.geom.m();
        let bps = self.geom.blocks_per_side();
        self.blkcol_buf.clear();
        for k in 0..self.widx_buf.len() {
            let wi = self.widx_buf[k];
            let first = (wi * 64) / m;
            let last = ((wi * 64 + 63) / m).min(bps - 1);
            let next = self.blkcol_buf.last().map_or(0, |&b| b + 1);
            for bc in first.max(next)..=last {
                self.blkcol_buf.push(bc);
            }
        }
    }

    /// Fills `blkcol_buf` with the distinct block-columns of the set bits
    /// of `colmask_buf` (ascending by construction) — the exact form the
    /// pre-write check pass requires.
    fn fill_block_cols_from_colmask(&mut self) {
        let m = self.geom.m();
        self.blkcol_buf.clear();
        for k in 0..self.widx_buf.len() {
            let wi = self.widx_buf[k];
            let mut w = self.colmask_buf[wi];
            while w != 0 {
                let c = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let bc = c / m;
                if self.blkcol_buf.last() != Some(&bc) {
                    self.blkcol_buf.push(bc);
                }
            }
        }
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Read-only view of the underlying MEM crossbar.
    pub fn mem(&self) -> &Crossbar {
        &self.mem
    }

    /// Read-only view of the CMEM.
    pub fn cmem(&self) -> &CheckMemory {
        &self.cmem
    }

    /// Reads one data bit (observability helper, zero cycles).
    pub fn bit(&self, r: usize, c: usize) -> bool {
        self.mem.bit(r, c)
    }

    fn block_index(&self, block_row: usize, block_col: usize) -> usize {
        block_row * self.geom.blocks_per_side() + block_col
    }

    /// Marks a block as ECC-covered or as uncovered scratch. Newly covering
    /// a block re-encodes its check-bits so the invariant holds.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if the block indices are out of range.
    pub fn set_block_covered(
        &mut self,
        block_row: usize,
        block_col: usize,
        covered: bool,
    ) -> Result<()> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        let idx = self.block_index(block_row, block_col);
        if covered && !self.covered[idx] {
            // Re-encode on coverage entry (a write-with-ECC sweep).
            self.reencode_block(block_row, block_col);
            self.stats.mem_cycles += self.geom.m() as u64; // m row reads
            self.stats.transfer_cycles += self.geom.m() as u64;
        }
        if self.covered[idx] != covered {
            self.covered[idx] = covered;
            self.rebuild_cover_masks();
        }
        Ok(())
    }

    /// Whether a block is ECC-covered.
    pub fn block_covered(&self, block_row: usize, block_col: usize) -> bool {
        self.covered[self.block_index(block_row, block_col)]
    }

    fn is_cell_covered(&self, r: usize, c: usize) -> bool {
        let (br, bc) = self.geom.block_of(r, c);
        self.covered[self.block_index(br, bc)]
    }

    fn extract_block(&self, block_row: usize, block_col: usize) -> BitGrid {
        let m = self.geom.m();
        let mut g = BitGrid::new(m, m);
        for r in 0..m {
            for c in 0..m {
                g.set(r, c, self.mem.bit(block_row * m + r, block_col * m + c));
            }
        }
        g
    }

    /// Whether this machine runs blocks through the packed-word codec.
    #[inline]
    fn word_blocks(&self) -> bool {
        matches!(self.engine, SimEngine::WordParallel) && self.geom.m() <= 63
    }

    /// Loads the packed row words of one block into `blockrow_buf`
    /// (word-path only; `m <= 63` so each local row is one word). The
    /// word/shift addressing is block-invariant and resolved once.
    fn fill_block_rows(&mut self, block_row: usize, block_col: usize) {
        let m = self.geom.m();
        let (base_r, c0) = (block_row * m, block_col * m);
        let (w0, sh) = (c0 / 64, (c0 % 64) as u32);
        let spill = sh as usize + m > 64;
        let mmask = (1u64 << m) - 1;
        self.blockrow_buf.clear();
        for lr in 0..m {
            let row = self.mem.grid().row_words(base_r + lr);
            let mut v = row[w0] >> sh;
            if spill {
                v |= row[w0 + 1] << (64 - sh);
            }
            self.blockrow_buf.push(v & mmask);
        }
    }

    /// Recomputes and stores one block's check-bits from its current data.
    fn reencode_block(&mut self, block_row: usize, block_col: usize) {
        if self.word_blocks() {
            self.fill_block_rows(block_row, block_col);
            let (l, k) = self.code.encode_words(&self.blockrow_buf);
            self.cmem
                .store_block_checks_words(block_row, block_col, l, k);
        } else {
            let block = self.extract_block(block_row, block_col);
            let (l, k) = self.code.encode(&block);
            self.cmem.store_block_checks(block_row, block_col, &l, &k);
        }
    }

    /// Bulk-loads a full data grid, recomputing every covered block's
    /// check-bits (the "ECC computed along write" path of a conventional
    /// memory).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not n×n.
    pub fn load_grid(&mut self, data: &BitGrid) {
        self.unclamp_stuck();
        self.load_grid_driven(data);
        self.clamp_stuck();
    }

    fn load_grid_driven(&mut self, data: &BitGrid) {
        let n = self.geom.n();
        assert_eq!((data.rows(), data.cols()), (n, n), "grid must be {n}x{n}");
        for r in 0..n {
            let row = data.row(r);
            self.mem.write_row(r, &row);
        }
        self.stats.mem_cycles += n as u64;
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            for bc in 0..bps {
                if self.covered[self.block_index(br, bc)] {
                    self.reencode_block(br, bc);
                }
            }
        }
    }

    /// Bills one critical-operation protocol: old transfer + new transfer
    /// on the MEM; two XOR3 programs (leading + counter) in a PC.
    #[inline]
    fn bill_critical(&mut self) {
        self.stats.critical_ops += 1;
        self.stats.mem_cycles += 2;
        self.stats.transfer_cycles += 2;
        self.stats.pc_xor3_ops += 2;
    }

    /// Applies the continuous ECC update for a set of written cells, given
    /// their prior values — the scalar-reference form. Cells in uncovered
    /// blocks are skipped.
    fn update_checks_scalar(&mut self, cells: &[(usize, usize, bool)]) {
        let mut any_covered = false;
        for &(r, c, old) in cells {
            if !self.is_cell_covered(r, c) {
                continue;
            }
            any_covered = true;
            let new = self.mem.bit(r, c);
            if old != new {
                let (br, bc) = self.geom.block_of(r, c);
                let (lr, lc) = self.geom.local_of(r, c);
                self.cmem
                    .xor_bit(Family::Leading, self.geom.leading(lr, lc), br, bc, true);
                self.cmem
                    .xor_bit(Family::Counter, self.geom.counter(lr, lc), br, bc, true);
            }
        }
        if any_covered {
            self.bill_critical();
        }
    }

    /// Word-diff ECC update for one touched row: XORs the snapshotted old
    /// words (`old_buf[old_base..]`, one per touched word index in
    /// `widx_buf`) against the row's current words, masks to the touched
    /// (`colmask_buf`) and covered columns, and flips the check-bits of the
    /// surviving change bits — one rotated XOR per touched block
    /// (`blkcol_buf`) when `m` fits a word. Returns whether any touched
    /// cell of the row was covered.
    fn apply_row_diff(&mut self, r: usize, old_base: usize) -> bool {
        let stride = self.stride();
        let m = self.geom.m();
        let ProtectedMemory {
            ref mem,
            ref mut cmem,
            ref tables,
            ref covered_row_masks,
            ref colmask_buf,
            ref widx_buf,
            ref blkcol_buf,
            ref old_buf,
            geom,
            ..
        } = *self;
        let cov_base = (r / m) * stride;
        let mut any_covered = false;
        for &wi in widx_buf.iter() {
            if colmask_buf[wi] & covered_row_masks[cov_base + wi] != 0 {
                any_covered = true;
                break;
            }
        }
        if !any_covered {
            return false;
        }
        let row = mem.grid().row_words(r);
        if m <= 63 {
            xor_row_major_changes(cmem, r, blkcol_buf, m, stride, |wi| {
                let touched = colmask_buf[wi] & covered_row_masks[cov_base + wi];
                if touched == 0 {
                    return 0;
                }
                let k = widx_buf
                    .iter()
                    .position(|&x| x == wi)
                    .expect("touched word is registered");
                (row[wi] ^ old_buf[old_base + k]) & touched
            });
        } else {
            let lr_base = (r % m) * geom.n();
            for (k, &wi) in widx_buf.iter().enumerate() {
                let touched = colmask_buf[wi] & covered_row_masks[cov_base + wi];
                if touched == 0 {
                    continue;
                }
                let mut changed = (row[wi] ^ old_buf[old_base + k]) & touched;
                while changed != 0 {
                    let c = wi * 64 + changed.trailing_zeros() as usize;
                    changed &= changed - 1;
                    cmem.flip_pair(
                        tables.lead[lr_base + c] as usize,
                        tables.counter[lr_base + c] as usize,
                        r / m,
                        c / m,
                    );
                }
            }
        }
        any_covered
    }

    /// Bounds-validates a row selection and loads it into `mask_buf`,
    /// erroring with the crossbar's own error value.
    fn select_row_mask(&mut self, sel: &LineSet) -> Result<()> {
        let n = self.geom.n();
        if let Some(max) = sel.max_index(n) {
            if max >= n {
                return Err(XbarError::RowOutOfBounds {
                    index: max,
                    rows: n,
                }
                .into());
            }
        }
        sel.fill_mask(n, &mut self.mask_buf);
        Ok(())
    }

    /// Fills `blkrow_buf` with the distinct block-rows of the lines
    /// selected in `mask_buf` (ascending).
    fn fill_block_rows_from_mask(&mut self) {
        let m = self.geom.m();
        self.blkrow_buf.clear();
        for (wi, &mw) in self.mask_buf.words().iter().enumerate() {
            let mut w = mw;
            while w != 0 {
                let r = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let br = r / m;
                if self.blkrow_buf.last() != Some(&br) {
                    self.blkrow_buf.push(br);
                }
            }
        }
    }

    /// Builds `colmask_buf`/`widx_buf` from an explicit column list.
    fn colmask_from_cols(&mut self, cols: &[usize]) -> Result<()> {
        let n = self.geom.n();
        self.colmask_buf.clear();
        self.colmask_buf.resize(self.stride(), 0);
        for &c in cols {
            if c >= n {
                return Err(XbarError::ColOutOfBounds { index: c, cols: n }.into());
            }
            self.colmask_buf[c / 64] |= 1u64 << (c % 64);
        }
        self.refresh_widx();
        Ok(())
    }

    /// Builds `colmask_buf`/`widx_buf` from a column selection.
    fn colmask_from_sel(&mut self, cols: &LineSet) -> Result<()> {
        let n = self.geom.n();
        if let Some(max) = cols.max_index(n) {
            if max >= n {
                return Err(XbarError::ColOutOfBounds {
                    index: max,
                    cols: n,
                }
                .into());
            }
        }
        cols.fill_mask(n, &mut self.mask_buf);
        self.colmask_buf.clear();
        self.colmask_buf.extend_from_slice(self.mask_buf.words());
        self.refresh_widx();
        Ok(())
    }

    fn refresh_widx(&mut self) {
        self.widx_buf.clear();
        for wi in 0..self.colmask_buf.len() {
            if self.colmask_buf[wi] != 0 {
                self.widx_buf.push(wi);
            }
        }
    }

    /// Snapshots the touched words of row `r` (per `widx_buf`) onto
    /// `old_buf`.
    fn snapshot_row(&mut self, r: usize) {
        for k in 0..self.widx_buf.len() {
            let wi = self.widx_buf[k];
            self.old_buf.push(self.mem.grid().row_words(r)[wi]);
        }
    }

    /// Shared tail of the row-writing word paths: snapshot the touched
    /// rows in `line_buf`, run `op`, then word-diff every touched row and
    /// bill the critical protocol if any touched cell was covered.
    fn run_row_touching_op(
        &mut self,
        op: impl FnOnce(&mut Crossbar) -> std::result::Result<(), XbarError>,
    ) -> Result<()> {
        self.fill_block_cols_approx();
        self.old_buf.clear();
        for i in 0..self.line_buf.len() {
            let r = self.line_buf[i];
            self.snapshot_row(r);
        }
        op(&mut self.mem)?;
        self.stats.mem_cycles += 1;
        let per_row = self.widx_buf.len();
        let mut any_covered = false;
        for i in 0..self.line_buf.len() {
            let r = self.line_buf[i];
            any_covered |= self.apply_row_diff(r, i * per_row);
        }
        if any_covered {
            self.bill_critical();
        }
        Ok(())
    }

    /// Writes the given `(column, value)` pairs into one row through the
    /// conventional write-with-ECC path, leaving every other cell of the
    /// memory untouched — the per-request load primitive of batched
    /// execution, where many requests occupy distinct rows of the same
    /// crossbar. One driven-row MEM cycle plus the critical-operation
    /// protocol for the touched covered blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if `row` or any column is out of range.
    pub fn write_row_cells(&mut self, row: usize, cells: &[(usize, bool)]) -> Result<()> {
        self.write_line_cells(LineAxis::Row, row, cells)
    }

    /// Transpose of [`ProtectedMemory::write_row_cells`]: writes the given
    /// `(row, value)` pairs into one *column* through the write-with-ECC
    /// path, leaving every other cell untouched — the per-request load
    /// primitive for **column-parallel** batched execution, where requests
    /// occupy distinct columns (the paper's §IV "row (column)" symmetry).
    /// One driven-column MEM cycle plus the critical-operation protocol for
    /// the touched covered blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if `col` or any row is out of range.
    pub fn write_col_cells(&mut self, col: usize, cells: &[(usize, bool)]) -> Result<()> {
        self.write_line_cells(LineAxis::Col, col, cells)
    }

    /// The axis-generic core of [`ProtectedMemory::write_row_cells`] /
    /// [`ProtectedMemory::write_col_cells`]: one driven line, sparse cell
    /// writes, per-cell ECC delta.
    fn write_line_cells(
        &mut self,
        axis: LineAxis,
        line: usize,
        cells: &[(usize, bool)],
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.write_line_cells_driven(axis, line, cells);
        self.clamp_stuck();
        out
    }

    fn write_line_cells_driven(
        &mut self,
        axis: LineAxis,
        line: usize,
        cells: &[(usize, bool)],
    ) -> Result<()> {
        let n = self.geom.n();
        let oob = |line: usize, cross: usize| {
            let (row, col) = axis.cell(line, cross);
            CoreError::OutOfBounds { row, col, n }
        };
        if line >= n {
            // Matches the historical error values: the missing coordinate
            // reads as zero.
            return Err(match axis {
                LineAxis::Row => CoreError::OutOfBounds {
                    row: line,
                    col: 0,
                    n,
                },
                LineAxis::Col => CoreError::OutOfBounds {
                    row: 0,
                    col: line,
                    n,
                },
            });
        }
        if let Some(&(cross, _)) = cells.iter().find(|&&(x, _)| x >= n) {
            return Err(oob(line, cross));
        }
        if cells.is_empty() {
            return Ok(());
        }
        if matches!(self.engine, SimEngine::ScalarReference) {
            // Retained reference: quadratic dedup (last value wins), then
            // per-cell snapshot/write/update, exactly the pre-word-parallel
            // path.
            let mut unique: Vec<(usize, bool)> = Vec::with_capacity(cells.len());
            for &(x, v) in cells {
                match unique.iter_mut().find(|(ux, _)| *ux == x) {
                    Some(entry) => entry.1 = v,
                    None => unique.push((x, v)),
                }
            }
            if self.check_on_critical {
                let coords: Vec<(usize, usize)> =
                    unique.iter().map(|&(x, _)| axis.cell(line, x)).collect();
                self.precheck_blocks(&coords)?;
            }
            let old: Vec<(usize, usize, bool)> = unique
                .iter()
                .map(|&(x, _)| {
                    let (r, c) = axis.cell(line, x);
                    (r, c, self.mem.bit(r, c))
                })
                .collect();
            for &(x, v) in &unique {
                let (r, c) = axis.cell(line, x);
                self.mem.write_bit(r, c, v);
            }
            self.stats.mem_cycles += 1;
            self.update_checks_scalar(&old);
            return Ok(());
        }
        // Word path: pack the cells into touched/value words — a later
        // duplicate overwrites its value bit, so "last value wins" falls
        // out of the packing and no quadratic dedup is needed.
        let stride = self.stride();
        self.colmask_buf.clear();
        self.colmask_buf.resize(stride, 0);
        self.new_buf.clear();
        self.new_buf.resize(stride, 0);
        for &(x, v) in cells {
            let (wi, bit) = (x / 64, 1u64 << (x % 64));
            self.colmask_buf[wi] |= bit;
            if v {
                self.new_buf[wi] |= bit;
            } else {
                self.new_buf[wi] &= !bit;
            }
        }
        self.refresh_widx();
        let m = self.geom.m();
        if self.check_on_critical {
            self.fill_block_cols_from_colmask();
            self.blkrow_buf.clear();
            self.blkrow_buf.push(line / m);
            if matches!(axis, LineAxis::Col) {
                // The packed mask ranges over rows: what it yields are
                // block-rows, and the line's block is a block-column.
                std::mem::swap(&mut self.blkrow_buf, &mut self.blkcol_buf);
            }
            self.precheck_rect()?;
        }
        // Snapshot the touched words, store through the masked zero-cycle
        // write, then flip check-bits for the changed covered cells.
        self.old_buf.clear();
        match axis {
            LineAxis::Row => {
                for k in 0..self.widx_buf.len() {
                    let wi = self.widx_buf[k];
                    self.old_buf.push(self.mem.grid().row_words(line)[wi]);
                }
                self.mem
                    .write_row_words_masked(line, &self.new_buf, &self.colmask_buf);
            }
            LineAxis::Col => {
                // Sparse snapshot: only the touched rows' old bits, packed
                // in gather layout (no O(n) column sweep).
                self.old_buf.clear();
                self.old_buf.resize(stride, 0);
                for k in 0..self.widx_buf.len() {
                    let wi = self.widx_buf[k];
                    let mut w = self.colmask_buf[wi];
                    let mut packed = 0u64;
                    while w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        packed |= (self.mem.grid().get(wi * 64 + bit, line) as u64) << bit;
                    }
                    self.old_buf[wi] = packed;
                }
                self.mem
                    .write_col_words_masked(line, &self.new_buf, &self.colmask_buf);
            }
        }
        self.stats.mem_cycles += 1;
        if matches!(axis, LineAxis::Row) {
            // Line loads are sparse relative to the line; the exact block
            // walk keeps the rotate sweep to the truly touched blocks.
            self.fill_block_cols_from_colmask();
        }
        let cov_base = (line / m) * stride;
        let mut any_covered = false;
        for k in 0..self.widx_buf.len() {
            let wi = self.widx_buf[k];
            let covered = match axis {
                LineAxis::Row => self.covered_row_masks[cov_base + wi],
                LineAxis::Col => self.covered_col_masks[cov_base + wi],
            };
            if self.colmask_buf[wi] & covered != 0 {
                any_covered = true;
                break;
            }
        }
        if !any_covered {
            return Ok(());
        }
        let n = self.geom.n();
        let ProtectedMemory {
            ref mut cmem,
            ref tables,
            ref covered_row_masks,
            ref covered_col_masks,
            ref colmask_buf,
            ref widx_buf,
            ref blkcol_buf,
            ref old_buf,
            ref new_buf,
            ..
        } = *self;
        match axis {
            LineAxis::Row if m <= 63 => {
                xor_row_major_changes(cmem, line, blkcol_buf, m, stride, |wi| {
                    let touched = colmask_buf[wi] & covered_row_masks[cov_base + wi];
                    if touched == 0 {
                        return 0;
                    }
                    let k = widx_buf
                        .iter()
                        .position(|&x| x == wi)
                        .expect("touched word is registered");
                    (old_buf[k] ^ new_buf[wi]) & touched
                });
            }
            LineAxis::Col if m <= 63 => {
                xor_col_major_changes(cmem, line, n / m, m, stride, |wi| {
                    (old_buf[wi] ^ new_buf[wi]) & colmask_buf[wi] & covered_col_masks[cov_base + wi]
                });
            }
            _ => {
                for (k, &wi) in widx_buf.iter().enumerate() {
                    let covered = match axis {
                        LineAxis::Row => covered_row_masks[cov_base + wi],
                        LineAxis::Col => covered_col_masks[cov_base + wi],
                    };
                    let touched = colmask_buf[wi] & covered;
                    if touched == 0 {
                        continue;
                    }
                    let old = match axis {
                        LineAxis::Row => old_buf[k],
                        LineAxis::Col => old_buf[wi],
                    };
                    let mut changed = (old ^ new_buf[wi]) & touched;
                    while changed != 0 {
                        let x = wi * 64 + changed.trailing_zeros() as usize;
                        changed &= changed - 1;
                        let (r, c) = axis.cell(line, x);
                        let idx = (r % m) * n + c;
                        cmem.flip_pair(
                            tables.lead[idx] as usize,
                            tables.counter[idx] as usize,
                            r / m,
                            c / m,
                        );
                    }
                }
            }
        }
        self.bill_critical();
        Ok(())
    }

    /// Row-parallel MAGIC NOR (see [`Crossbar::exec_nor_rows`]); maintains
    /// ECC for covered blocks automatically.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_nor_rows(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.exec_nor_rows_driven(in_cols, out_col, rows);
        self.clamp_stuck();
        out
    }

    fn exec_nor_rows_driven(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
    ) -> Result<()> {
        if matches!(self.engine, SimEngine::ScalarReference) {
            let idx: Vec<usize> = rows.iter(self.mem.rows()).collect();
            if self.check_on_critical {
                let cells: Vec<(usize, usize)> = idx.iter().map(|&r| (r, out_col)).collect();
                self.precheck_blocks(&cells)?;
            }
            let old: Vec<(usize, usize, bool)> = idx
                .iter()
                .map(|&r| (r, out_col, self.mem.bit(r, out_col)))
                .collect();
            self.mem.exec_nor_rows(in_cols, out_col, rows)?;
            self.stats.mem_cycles += 1;
            self.update_checks_scalar(&old);
            return Ok(());
        }
        let n = self.geom.n();
        if self.check_on_critical {
            // The pre-write pass needs validated coordinates before any
            // block arithmetic; the non-checking path defers validation
            // to the crossbar so error *kinds* match the scalar
            // reference (on invalid unsorted Explicit selections the
            // reported index may differ — word scans in word order).
            if out_col >= n {
                return Err(XbarError::ColOutOfBounds {
                    index: out_col,
                    cols: n,
                }
                .into());
            }
            self.select_row_mask(rows)?;
            self.fill_block_rows_from_mask();
            self.blkcol_buf.clear();
            self.blkcol_buf.push(out_col / self.geom.m());
            self.precheck_rect()?;
        }
        // The gate reports its own change bits (old XOR new, one per
        // selected row) — no snapshot or re-gather of the output column.
        self.mem
            .exec_nor_rows_changed(in_cols, out_col, rows, &mut self.new_buf)?;
        self.stats.mem_cycles += 1;
        let stride = self.stride();
        let m = self.geom.m();
        let cov_base = (out_col / m) * stride;
        let fully = self.fully_covered;
        let ProtectedMemory {
            ref mut cmem,
            ref tables,
            ref covered_col_masks,
            ref new_buf,
            ref mut stats,
            ..
        } = *self;
        // Coverage probe: an empty selection touches nothing; otherwise
        // trivially true on the default fully covered device, early-exit
        // scan elsewhere.
        let any_covered = !rows.is_empty(n)
            && (fully
                || rows
                    .iter(n)
                    .any(|r| covered_col_masks[cov_base + r / 64] >> (r % 64) & 1 != 0));
        if any_covered {
            if m <= 63 && fully {
                xor_col_major_changes(cmem, out_col, n / m, m, stride, |wi| new_buf[wi]);
            } else if m <= 63 {
                xor_col_major_changes(cmem, out_col, n / m, m, stride, |wi| {
                    new_buf[wi] & covered_col_masks[cov_base + wi]
                });
            } else {
                for wi in 0..stride {
                    let mut changed = new_buf[wi] & covered_col_masks[cov_base + wi];
                    while changed != 0 {
                        let r = wi * 64 + changed.trailing_zeros() as usize;
                        changed &= changed - 1;
                        let idx = (r % m) * n + out_col;
                        cmem.flip_pair(
                            tables.lead[idx] as usize,
                            tables.counter[idx] as usize,
                            r / m,
                            out_col / m,
                        );
                    }
                }
            }
            stats.critical_ops += 1;
            stats.mem_cycles += 2;
            stats.transfer_cycles += 2;
            stats.pc_xor3_ops += 2;
        }
        Ok(())
    }

    /// Column-parallel MAGIC NOR with automatic ECC maintenance.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_nor_cols(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.exec_nor_cols_driven(in_rows, out_row, cols);
        self.clamp_stuck();
        out
    }

    fn exec_nor_cols_driven(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
    ) -> Result<()> {
        if matches!(self.engine, SimEngine::ScalarReference) {
            let idx: Vec<usize> = cols.iter(self.mem.cols()).collect();
            if self.check_on_critical {
                let cells: Vec<(usize, usize)> = idx.iter().map(|&c| (out_row, c)).collect();
                self.precheck_blocks(&cells)?;
            }
            let old: Vec<(usize, usize, bool)> = idx
                .iter()
                .map(|&c| (out_row, c, self.mem.bit(out_row, c)))
                .collect();
            self.mem.exec_nor_cols(in_rows, out_row, cols)?;
            self.stats.mem_cycles += 1;
            self.update_checks_scalar(&old);
            return Ok(());
        }
        let n = self.geom.n();
        if self.check_on_critical {
            // As in the row-parallel path: validate here only for the
            // pre-write pass; otherwise the crossbar's own validation
            // order defines the error values.
            if out_row >= n {
                return Err(XbarError::RowOutOfBounds {
                    index: out_row,
                    rows: n,
                }
                .into());
            }
            self.colmask_from_sel(cols)?;
            self.line_buf.clear();
            self.line_buf.push(out_row);
            self.fill_block_rows_from_lines();
            self.fill_block_cols_from_colmask();
            self.precheck_rect()?;
        }
        // Transpose of the row-parallel path: the gate reports its change
        // bits in row-word layout; no column mask is materialized here.
        self.mem
            .exec_nor_cols_changed(in_rows, out_row, cols, &mut self.new_buf)?;
        self.stats.mem_cycles += 1;
        let stride = self.stride();
        let m = self.geom.m();
        let cov_base = (out_row / m) * stride;
        let fully = self.fully_covered;
        let ProtectedMemory {
            ref mut cmem,
            ref tables,
            ref covered_row_masks,
            ref new_buf,
            ref all_blocks,
            ref mut stats,
            ..
        } = *self;
        let any_covered = !cols.is_empty(n)
            && (fully
                || cols
                    .iter(n)
                    .any(|c| covered_row_masks[cov_base + c / 64] >> (c % 64) & 1 != 0));
        if any_covered {
            if m <= 63 && fully {
                xor_row_major_changes(cmem, out_row, all_blocks, m, stride, |wi| new_buf[wi]);
            } else if m <= 63 {
                xor_row_major_changes(cmem, out_row, all_blocks, m, stride, |wi| {
                    new_buf[wi] & covered_row_masks[cov_base + wi]
                });
            } else {
                let lr_base = (out_row % m) * n;
                for wi in 0..stride {
                    let mut changed = new_buf[wi] & covered_row_masks[cov_base + wi];
                    while changed != 0 {
                        let c = wi * 64 + changed.trailing_zeros() as usize;
                        changed &= changed - 1;
                        cmem.flip_pair(
                            tables.lead[lr_base + c] as usize,
                            tables.counter[lr_base + c] as usize,
                            out_row / m,
                            c / m,
                        );
                    }
                }
            }
            stats.critical_ops += 1;
            stats.mem_cycles += 2;
            stats.transfer_cycles += 2;
            stats.pc_xor3_ops += 2;
        }
        Ok(())
    }

    /// Row-parallel initialization with automatic ECC maintenance (the
    /// paper's footnote 3 notes block resets could update ECC directly; the
    /// net effect is identical).
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_init_rows(&mut self, cols: &[usize], rows: &LineSet) -> Result<()> {
        self.unclamp_stuck();
        let out = self.exec_init_rows_driven(cols, rows);
        self.clamp_stuck();
        out
    }

    fn exec_init_rows_driven(&mut self, cols: &[usize], rows: &LineSet) -> Result<()> {
        if matches!(self.engine, SimEngine::ScalarReference) {
            let idx: Vec<usize> = rows.iter(self.mem.rows()).collect();
            if self.check_on_critical {
                let mut cells = Vec::with_capacity(idx.len() * cols.len());
                for &r in &idx {
                    for &c in cols {
                        cells.push((r, c));
                    }
                }
                self.precheck_blocks(&cells)?;
            }
            let mut old = Vec::with_capacity(idx.len() * cols.len());
            for &r in &idx {
                for &c in cols {
                    old.push((r, c, self.mem.bit(r, c)));
                }
            }
            self.mem.exec_init_rows(cols, rows)?;
            self.stats.mem_cycles += 1;
            self.update_checks_scalar(&old);
            return Ok(());
        }
        self.colmask_from_cols(cols)?;
        let n = self.geom.n();
        if let Some(max) = rows.max_index(n) {
            if max >= n {
                return Err(XbarError::RowOutOfBounds {
                    index: max,
                    rows: n,
                }
                .into());
            }
        }
        if self.check_on_critical {
            self.select_row_mask(rows)?;
            self.fill_block_rows_from_mask();
            self.fill_block_cols_from_colmask();
            self.precheck_rect()?;
        }
        // An init drives every touched cell to 1, so the change mask is
        // `touched & !current`, computable (and its check-bits flippable)
        // before the write: inputs are fully validated above, making the
        // crossbar init infallible from here.
        let any_covered = self.flip_init_diffs(rows);
        self.mem.exec_init_rows(cols, rows)?;
        self.stats.mem_cycles += 1;
        if any_covered {
            self.bill_critical();
        }
        Ok(())
    }

    /// The fused word-diff pass of a row-parallel init: for every selected
    /// row and touched block (`blkcol_buf`), the covered cells currently at
    /// 0 flip their check-bits — one rotated XOR per (row, block) when `m`
    /// fits a word. The selection must already be bounds-checked.
    fn flip_init_diffs(&mut self, rows: &LineSet) -> bool {
        // Init column masks are sparse (a program's arm group), so the
        // exact per-bit block walk is cheap and keeps the per-row sweep
        // from visiting blocks the word-granular approximation would add.
        self.fill_block_cols_from_colmask();
        let stride = self.stride();
        let (n, m) = (self.geom.n(), self.geom.m());
        let fully = self.fully_covered;
        // Contiguous selections over a fully covered device aggregate the
        // whole init: per touched block, the change segments of its rows
        // accumulate (each rotated per the encode identity) into ONE
        // packed CMEM XOR — the Θ(blocks) form of the critical update.
        let contiguous = match rows {
            LineSet::All => Some(0..n),
            LineSet::One(i) => Some(*i..*i + 1),
            LineSet::Range(r) => Some(r.clone()),
            LineSet::Explicit(_) => None,
        };
        if fully && m <= 63 {
            if let Some(range) = contiguous {
                let mmask = (1u64 << m) - 1;
                let ProtectedMemory {
                    ref mem,
                    ref mut cmem,
                    ref colmask_buf,
                    ref widx_buf,
                    ref blkcol_buf,
                    ..
                } = *self;
                if range.is_empty() || widx_buf.is_empty() {
                    return false;
                }
                let grid = mem.grid();
                let (first_br, last_br) = (range.start / m, (range.end - 1) / m);
                // Per-block accumulators and a per-row change-word memo:
                // every (row, block) step is then pure ALU on locals. The
                // fixed capacities bound realistic geometries; wider
                // shapes take the plain per-(row, block) walk below.
                const MAX_BLOCKS: usize = 64;
                const MAX_STRIDE: usize = 32;
                if blkcol_buf.len() <= MAX_BLOCKS && stride <= MAX_STRIDE {
                    let mut chg = [0u64; MAX_STRIDE];
                    let mut acc = [(0u64, 0u64); MAX_BLOCKS];
                    for br in first_br..=last_br {
                        let r0 = range.start.max(br * m);
                        let r1 = range.end.min((br + 1) * m);
                        acc[..blkcol_buf.len()].fill((0, 0));
                        for r in r0..r1 {
                            let row = grid.row_words(r);
                            for &wi in widx_buf.iter() {
                                chg[wi] = colmask_buf[wi] & !row[wi];
                            }
                            let lr = r - br * m;
                            let rot_counter = (lr + 1) % m;
                            for (j, &bc) in blkcol_buf.iter().enumerate() {
                                let start = bc * m;
                                let (w0, sh) = (start / 64, start % 64);
                                let mut seg = chg[w0] >> sh;
                                if sh + m > 64 && w0 + 1 < stride {
                                    seg |= chg[w0 + 1] << (64 - sh);
                                }
                                seg &= mmask;
                                if seg != 0 {
                                    acc[j].0 ^= rotl_m(seg, lr, m, mmask);
                                    acc[j].1 ^= rotl_m(rev_m(seg, m), rot_counter, m, mmask);
                                }
                            }
                        }
                        for (j, &bc) in blkcol_buf.iter().enumerate() {
                            let (lead, counter) = acc[j];
                            if lead | counter != 0 {
                                cmem.xor_block_words(br, bc, lead, counter);
                            }
                        }
                    }
                    return true;
                }
                for br in first_br..=last_br {
                    let r0 = range.start.max(br * m);
                    let r1 = range.end.min((br + 1) * m);
                    for &bc in blkcol_buf.iter() {
                        let start = bc * m;
                        let (w0, sh) = (start / 64, start % 64);
                        let spill = sh + m > 64 && w0 + 1 < stride;
                        let mut lead = 0u64;
                        let mut counter = 0u64;
                        for r in r0..r1 {
                            let row = grid.row_words(r);
                            let mut seg = (colmask_buf[w0] & !row[w0]) >> sh;
                            if spill {
                                seg |= (colmask_buf[w0 + 1] & !row[w0 + 1]) << (64 - sh);
                            }
                            seg &= mmask;
                            if seg != 0 {
                                let lr = r - br * m;
                                lead ^= rotl_m(seg, lr, m, mmask);
                                counter ^= rotl_m(rev_m(seg, m), (lr + 1) % m, m, mmask);
                            }
                        }
                        if lead | counter != 0 {
                            cmem.xor_block_words(br, bc, lead, counter);
                        }
                    }
                }
                return true;
            }
        }
        let ProtectedMemory {
            ref mem,
            ref mut cmem,
            ref tables,
            ref covered_row_masks,
            ref colmask_buf,
            ref widx_buf,
            ref blkcol_buf,
            ..
        } = *self;
        let grid = mem.grid();
        let mut any_covered = false;
        for r in rows.iter(n) {
            let row = grid.row_words(r);
            let br = r / m;
            let cov_base = br * stride;
            if !fully {
                let mut row_covered = false;
                for &wi in widx_buf.iter() {
                    if colmask_buf[wi] & covered_row_masks[cov_base + wi] != 0 {
                        row_covered = true;
                        break;
                    }
                }
                if !row_covered {
                    continue;
                }
            }
            any_covered = true;
            if m <= 63 && fully {
                xor_row_major_changes(cmem, r, blkcol_buf, m, stride, |wi| {
                    colmask_buf[wi] & !row[wi]
                });
            } else if m <= 63 {
                xor_row_major_changes(cmem, r, blkcol_buf, m, stride, |wi| {
                    colmask_buf[wi] & covered_row_masks[cov_base + wi] & !row[wi]
                });
            } else {
                let lr_base = (r % m) * n;
                for &wi in widx_buf.iter() {
                    let mut changed = colmask_buf[wi] & covered_row_masks[cov_base + wi] & !row[wi];
                    while changed != 0 {
                        let c = wi * 64 + changed.trailing_zeros() as usize;
                        changed &= changed - 1;
                        cmem.flip_pair(
                            tables.lead[lr_base + c] as usize,
                            tables.counter[lr_base + c] as usize,
                            br,
                            c / m,
                        );
                    }
                }
            }
        }
        any_covered
    }

    /// Column-parallel initialization with automatic ECC maintenance.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_init_cols(&mut self, rows: &[usize], cols: &LineSet) -> Result<()> {
        self.unclamp_stuck();
        let out = self.exec_init_cols_driven(rows, cols);
        self.clamp_stuck();
        out
    }

    fn exec_init_cols_driven(&mut self, rows: &[usize], cols: &LineSet) -> Result<()> {
        if matches!(self.engine, SimEngine::ScalarReference) {
            let idx: Vec<usize> = cols.iter(self.mem.cols()).collect();
            if self.check_on_critical {
                let mut cells = Vec::with_capacity(idx.len() * rows.len());
                for &c in &idx {
                    for &r in rows {
                        cells.push((r, c));
                    }
                }
                self.precheck_blocks(&cells)?;
            }
            let mut old = Vec::with_capacity(idx.len() * rows.len());
            for &c in &idx {
                for &r in rows {
                    old.push((r, c, self.mem.bit(r, c)));
                }
            }
            self.mem.exec_init_cols(rows, cols)?;
            self.stats.mem_cycles += 1;
            self.update_checks_scalar(&old);
            return Ok(());
        }
        let n = self.geom.n();
        if let Some(&r) = rows.iter().find(|&&r| r >= n) {
            return Err(XbarError::RowOutOfBounds { index: r, rows: n }.into());
        }
        self.colmask_from_sel(cols)?;
        self.line_buf.clear();
        self.line_buf.extend_from_slice(rows);
        if self.check_on_critical {
            self.fill_block_rows_from_lines();
            self.fill_block_cols_from_colmask();
            self.precheck_rect()?;
        }
        self.run_row_touching_op(|mem| mem.exec_init_cols(rows, cols))
    }

    /// Whether this machine's configuration is eligible for the fused
    /// whole-sequence executor at all (engine, coverage, geometry,
    /// checking policy) — callers use this to skip building step lists
    /// that [`ProtectedMemory::exec_steps_rows`] would decline anyway.
    pub fn supports_fused_rows(&self) -> bool {
        matches!(self.engine, SimEngine::WordParallel)
            && self.fully_covered
            && self.geom.m() <= 63
            && !self.check_on_critical
            && self.stride() <= 32
    }

    /// Fused execution of a whole step sequence over the selected rows
    /// (see [`Crossbar::exec_steps_rows`]): one pass over the rows executes
    /// every step, ECC maintenance collapses to the *net* word-diff of the
    /// touched columns (a cell toggled twice leaves its diagonal parities
    /// untouched — XOR updates cancel pairwise, so only initial-vs-final
    /// state matters), and statistics are billed per step exactly as the
    /// step-at-a-time path would.
    ///
    /// This is the compile-and-run-once convenience form: it compiles the
    /// sequence ([`ProtectedMemory::compile_fused_rows`]) and replays it
    /// single-threaded. Batch executors that replay the same program every
    /// wave cache the [`FusedProgram`] and call
    /// [`ProtectedMemory::exec_fused_rows`] directly, optionally across a
    /// worker team.
    ///
    /// Returns `Ok(false)` without touching any state when the sequence or
    /// machine configuration is ineligible — the caller then replays the
    /// steps through the per-step API, which is bit-identical (including
    /// error semantics). Eligible: word-parallel engine, every block
    /// covered, `m <= 63`, no pre-write checking, a contiguous non-empty
    /// row selection, and a sequence the crossbar can fuse.
    ///
    /// # Errors
    ///
    /// Infallible in practice; mirrors the per-step executors.
    pub fn exec_steps_rows(&mut self, steps: &[ParallelStep], rows: &LineSet) -> Result<bool> {
        self.unclamp_stuck();
        let out = self.exec_steps_rows_driven(steps, rows);
        self.clamp_stuck();
        out
    }

    fn exec_steps_rows_driven(&mut self, steps: &[ParallelStep], rows: &LineSet) -> Result<bool> {
        let n = self.geom.n();
        if !self.supports_fused_rows() {
            return Ok(false);
        }
        let range = match rows {
            LineSet::All => 0..n,
            LineSet::One(i) => *i..*i + 1,
            LineSet::Range(r) => r.clone(),
            LineSet::Explicit(_) => return Ok(false),
        };
        if range.is_empty() || range.end > n {
            return Ok(false);
        }
        match self.compile_fused_rows(steps) {
            None => Ok(false),
            Some(prog) => {
                self.exec_fused_rows(&prog, range, 1);
                Ok(true)
            }
        }
    }

    /// Compiles a step sequence into a reusable row-parallel
    /// [`FusedProgram`]: the crossbar word plan plus the ECC sweep metadata
    /// (the sequence's touched-column mask, its non-zero word indices, and
    /// the touched block-columns). Returns `None` when the machine or the
    /// sequence is ineligible for fused execution — same rules as
    /// [`ProtectedMemory::exec_steps_rows`] — in which case callers replay
    /// through the per-step API.
    pub fn compile_fused_rows(&self, steps: &[ParallelStep]) -> Option<FusedProgram> {
        if !self.supports_fused_rows() || steps.is_empty() {
            return None;
        }
        let (n, m) = (self.geom.n(), self.geom.m());
        let stride = self.stride();
        let mut colmask = vec![0u64; stride];
        for step in steps {
            let cells: &[usize] = match step {
                ParallelStep::Init(cells) => cells,
                ParallelStep::Nor(_, out) => std::slice::from_ref(out),
            };
            for &c in cells {
                if c >= n {
                    return None;
                }
                colmask[c / 64] |= 1u64 << (c % 64);
            }
        }
        let plan = self.mem.compile_steps_rows(steps)?;
        let widx: Vec<usize> = (0..stride).filter(|&wi| colmask[wi] != 0).collect();
        let mut blkcols: Vec<usize> = Vec::new();
        for &wi in &widx {
            let mut w = colmask[wi];
            while w != 0 {
                let c = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let bc = c / m;
                if blkcols.last() != Some(&bc) {
                    blkcols.push(bc);
                }
            }
        }
        Some(FusedProgram {
            kind: FusedKind::Rows {
                plan,
                colmask,
                widx,
                blkcols,
            },
            steps: steps.len() as u64,
        })
    }

    /// Column-parallel transpose of
    /// [`ProtectedMemory::compile_fused_rows`]: step cell indices name
    /// *rows*, and the compiled program replays over a contiguous column
    /// range via [`ProtectedMemory::exec_fused_cols`]. The ECC sweep
    /// metadata lives in the crossbar plan itself (the rows the sequence
    /// writes); the touched block-columns depend on the replay range and
    /// are derived at execution time.
    pub fn compile_fused_cols(&self, steps: &[ParallelStep]) -> Option<FusedProgram> {
        if !self.supports_fused_rows() || steps.is_empty() {
            return None;
        }
        let n = self.geom.n();
        for step in steps {
            let cells: &[usize] = match step {
                ParallelStep::Init(cells) => cells,
                ParallelStep::Nor(_, out) => std::slice::from_ref(out),
            };
            if cells.iter().any(|&r| r >= n) {
                return None;
            }
        }
        let plan = self.mem.compile_steps_cols(steps)?;
        Some(FusedProgram {
            kind: FusedKind::Cols { plan },
            steps: steps.len() as u64,
        })
    }

    /// Replays a compiled row-parallel program over a contiguous row range,
    /// optionally across a team of `threads` scoped workers. The row range
    /// is split into contiguous chunks at *block-row boundaries* — a pure
    /// function of the geometry and thread count — so each worker owns
    /// disjoint plane rows **and** disjoint ECC accumulator slots; the
    /// accumulated deltas are flushed into the CMEM serially in block-row
    /// order afterwards. State, statistics and check-bits are therefore
    /// bit-identical for every thread count, including `1` (which runs
    /// inline without spawning).
    ///
    /// # Panics
    ///
    /// Panics if `prog` was compiled by
    /// [`ProtectedMemory::compile_fused_cols`], if the range is empty or
    /// out of bounds, or if the machine configuration no longer matches the
    /// compiled plan.
    pub fn exec_fused_rows(
        &mut self,
        prog: &FusedProgram,
        rows: std::ops::Range<usize>,
        threads: usize,
    ) {
        self.unclamp_stuck();
        self.exec_fused_rows_driven(prog, rows, threads);
        self.clamp_stuck();
    }

    fn exec_fused_rows_driven(
        &mut self,
        prog: &FusedProgram,
        rows: std::ops::Range<usize>,
        threads: usize,
    ) {
        let FusedKind::Rows {
            plan,
            colmask,
            widx,
            blkcols,
        } = &prog.kind
        else {
            panic!("column-parallel program passed to exec_fused_rows");
        };
        let (n, m) = (self.geom.n(), self.geom.m());
        let stride = self.stride();
        assert!(
            !rows.is_empty() && rows.end <= n,
            "fused row range out of bounds"
        );
        debug_assert!(self.supports_fused_rows(), "machine not fused-eligible");
        let lines = rows.len() as u64;
        let per_row = widx.len();
        let nbcs = blkcols.len();
        let first_br = rows.start / m;
        let nbrs = (rows.end - 1) / m - first_br + 1;
        self.eccacc_buf.clear();
        self.eccacc_buf.resize(nbrs * nbcs, (0, 0));
        self.old_buf.clear();
        self.old_buf.resize(rows.len() * per_row, 0);
        let team = threads.max(1).min(nbrs);
        {
            let (bits, armed) = self.mem.planes_words_mut();
            let span = rows.start * stride..rows.end * stride;
            let bits = &mut bits[span.clone()];
            let armed = &mut armed[span];
            if team <= 1 {
                fused_rows_chunk(
                    plan,
                    bits,
                    armed,
                    &mut self.old_buf,
                    &mut self.eccacc_buf,
                    rows.clone(),
                    colmask,
                    widx,
                    blkcols,
                    m,
                    stride,
                );
            } else {
                let (q, rem) = (nbrs / team, nbrs % team);
                std::thread::scope(|s| {
                    let mut bits_rest = bits;
                    let mut armed_rest = armed;
                    let mut old_rest = &mut self.old_buf[..];
                    let mut acc_rest = &mut self.eccacc_buf[..];
                    let mut br_cursor = first_br;
                    let mut row_cursor = rows.start;
                    for k in 0..team {
                        let nb = q + usize::from(k < rem);
                        let row_end = rows.end.min((br_cursor + nb) * m);
                        let chunk = row_cursor..row_end;
                        let nrows = chunk.len();
                        let (b, rest) = bits_rest.split_at_mut(nrows * stride);
                        bits_rest = rest;
                        let (a, rest) = armed_rest.split_at_mut(nrows * stride);
                        armed_rest = rest;
                        let (o, rest) = old_rest.split_at_mut(nrows * per_row);
                        old_rest = rest;
                        let (e, rest) = acc_rest.split_at_mut(nb * nbcs);
                        acc_rest = rest;
                        s.spawn(move || {
                            fused_rows_chunk(
                                plan, b, a, o, e, chunk, colmask, widx, blkcols, m, stride,
                            )
                        });
                        br_cursor += nb;
                        row_cursor = row_end;
                    }
                });
            }
        }
        self.mem.record_fused(plan, lines);
        let steps_n = prog.steps;
        self.stats.mem_cycles += 3 * steps_n;
        self.stats.transfer_cycles += 2 * steps_n;
        self.stats.pc_xor3_ops += 2 * steps_n;
        self.stats.critical_ops += steps_n;
        for (i, group) in self.eccacc_buf.chunks_exact(nbcs).enumerate() {
            for (j, &(lead, q)) in group.iter().enumerate() {
                if lead | q != 0 {
                    self.cmem
                        .xor_block_words(first_br + i, blkcols[j], lead, rev_m(q, m));
                }
            }
        }
    }

    /// Replays a compiled column-parallel program over a contiguous column
    /// range — the transpose of [`ProtectedMemory::exec_fused_rows`]. The
    /// ECC maintenance is the *net* row-major diff of every row the
    /// sequence writes, restricted to the column range, accumulated per
    /// block-row and flushed once per touched block.
    ///
    /// # Panics
    ///
    /// Panics if `prog` was compiled by
    /// [`ProtectedMemory::compile_fused_rows`], if the range is empty or
    /// out of bounds, or if the machine configuration no longer matches the
    /// compiled plan.
    pub fn exec_fused_cols(&mut self, prog: &FusedProgram, cols: std::ops::Range<usize>) {
        self.unclamp_stuck();
        self.exec_fused_cols_driven(prog, cols);
        self.clamp_stuck();
    }

    fn exec_fused_cols_driven(&mut self, prog: &FusedProgram, cols: std::ops::Range<usize>) {
        let FusedKind::Cols { plan } = &prog.kind else {
            panic!("row-parallel program passed to exec_fused_cols");
        };
        let (n, m) = (self.geom.n(), self.geom.m());
        let stride = self.stride();
        assert!(
            !cols.is_empty() && cols.end <= n,
            "fused column range out of bounds"
        );
        debug_assert!(self.supports_fused_rows(), "machine not fused-eligible");
        // Word mask of the column range.
        let (w0, w1) = (cols.start / 64, (cols.end - 1) / 64);
        let nwords = w1 - w0 + 1;
        let mut mask = [0u64; MAX_FUSED_STRIDE];
        mask[0] = u64::MAX << (cols.start % 64);
        let hi = u64::MAX >> (63 - (cols.end - 1) % 64);
        if w0 == w1 {
            mask[0] &= hi;
        } else {
            for w in mask.iter_mut().take(nwords - 1).skip(1) {
                *w = u64::MAX;
            }
            mask[nwords - 1] = hi;
        }
        // Snapshot the in-range words of every row the sequence writes.
        self.old_buf.clear();
        for r in plan.touched_lines() {
            self.old_buf
                .extend_from_slice(&self.mem.grid().row_words(r)[w0..=w1]);
        }
        self.mem.exec_fused_cols(plan, cols.clone());
        let steps_n = prog.steps;
        self.stats.mem_cycles += 3 * steps_n;
        self.stats.transfer_cycles += 2 * steps_n;
        self.stats.pc_xor3_ops += 2 * steps_n;
        self.stats.critical_ops += steps_n;
        // Net ECC: each written row's diff over the column range, rotated
        // into the touched block-columns; the plan's rows ascend, so one
        // running block-row group of accumulators suffices.
        let mmask = (1u64 << m) - 1;
        let bc0 = cols.start / m;
        let nbcs = (cols.end - 1) / m - bc0 + 1;
        self.eccacc_buf.clear();
        self.eccacc_buf.resize(nbcs, (0, 0));
        let ProtectedMemory {
            ref mem,
            ref mut cmem,
            ref mut eccacc_buf,
            ref old_buf,
            ..
        } = *self;
        let grid = mem.grid();
        let mut cur_br = usize::MAX;
        for (ti, r) in plan.touched_lines().enumerate() {
            let br = r / m;
            if br != cur_br {
                if cur_br != usize::MAX {
                    for (j, a) in eccacc_buf.iter_mut().enumerate() {
                        if a.0 | a.1 != 0 {
                            cmem.xor_block_words(cur_br, bc0 + j, a.0, rev_m(a.1, m));
                            *a = (0, 0);
                        }
                    }
                }
                cur_br = br;
            }
            let row = grid.row_words(r);
            let ob = ti * nwords;
            let lr = r % m;
            let rot_q = m - 1 - lr;
            let at = |wi: usize| -> u64 {
                if wi < w0 || wi > w1 {
                    0
                } else {
                    (row[wi] ^ old_buf[ob + wi - w0]) & mask[wi - w0]
                }
            };
            for j in 0..nbcs {
                let start = (bc0 + j) * m;
                let (wb, sh) = (start / 64, start % 64);
                let mut seg = at(wb) >> sh;
                if sh + m > 64 && wb + 1 < stride {
                    seg |= at(wb + 1) << (64 - sh);
                }
                seg &= mmask;
                if seg != 0 {
                    let a = &mut eccacc_buf[j];
                    a.0 ^= rotl_m(seg, lr, m, mmask);
                    a.1 ^= rotl_m(seg, rot_q, m, mmask);
                }
            }
        }
        if cur_br != usize::MAX {
            for (j, a) in eccacc_buf.iter_mut().enumerate() {
                if a.0 | a.1 != 0 {
                    cmem.xor_block_words(cur_br, bc0 + j, a.0, rev_m(a.1, m));
                    *a = (0, 0);
                }
            }
        }
    }

    /// Up-front validation shared by the batched load paths: every listed
    /// line and every cell coordinate must be in range. Nothing has been
    /// written when an error is returned.
    fn validate_batched(
        &self,
        axis: LineAxis,
        lines: &[usize],
        loads: &[Vec<(usize, bool)>],
    ) -> Result<()> {
        let n = self.geom.n();
        for &line in lines {
            if line >= n {
                let (row, col) = match axis {
                    LineAxis::Row => (line, 0),
                    LineAxis::Col => (0, line),
                };
                return Err(CoreError::OutOfBounds { row, col, n });
            }
            if let Some(&(cross, _)) = loads[line].iter().find(|&&(x, _)| x >= n) {
                let (row, col) = axis.cell(line, cross);
                return Err(CoreError::OutOfBounds { row, col, n });
            }
        }
        Ok(())
    }

    /// Flushes the dirty block-column accumulators (`blkcol_buf`) of one
    /// block-row group into the CMEM — the counter sums are bit-reversed
    /// once here, not per line — and resets them for the next group.
    fn flush_ecc_group(&mut self, br: usize, m: usize) {
        if br == usize::MAX {
            return;
        }
        for i in 0..self.blkcol_buf.len() {
            let bc = self.blkcol_buf[i];
            let (lead, q) = self.eccacc_buf[bc];
            if lead | q != 0 {
                self.cmem.xor_block_words(br, bc, lead, rev_m(q, m));
            }
            self.eccacc_buf[bc] = (0, 0);
        }
        self.blkcol_buf.clear();
    }

    /// Accumulates one row's masked change words into the per-block-column
    /// ECC accumulators (`eccacc_buf`, indexed by absolute block-column),
    /// marking newly dirtied block-columns in `blkcol_buf`. `cm` gates
    /// which words are inspected; `chg` holds the masked old-xor-new words.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_row_ecc(
        &mut self,
        r: usize,
        cm: &[u64],
        chg: &[u64],
        m: usize,
        mmask: u64,
        stride: usize,
        bps: usize,
    ) {
        let lr = r % m;
        let rot_q = m - 1 - lr;
        let mut next_bc = 0usize;
        for (wi, &cmw) in cm.iter().enumerate().take(stride) {
            if cmw == 0 {
                continue;
            }
            let first = (wi * 64) / m;
            let last = ((wi * 64 + 63) / m).min(bps - 1);
            for bc in first.max(next_bc)..=last {
                let start = bc * m;
                let (w0, sh) = (start / 64, start % 64);
                let mut seg = chg[w0] >> sh;
                if sh + m > 64 && w0 + 1 < stride {
                    seg |= chg[w0 + 1] << (64 - sh);
                }
                seg &= mmask;
                if seg != 0 {
                    // Duplicate entries are fine: the flush zeroes an
                    // accumulator on first visit and skips it after, so a
                    // push-always dirty list beats a membership scan.
                    self.blkcol_buf.push(bc);
                    let a = &mut self.eccacc_buf[bc];
                    a.0 ^= rotl_m(seg, lr, m, mmask);
                    a.1 ^= rotl_m(seg, rot_q, m, mmask);
                }
            }
            next_bc = last + 1;
        }
    }

    /// Batched form of [`ProtectedMemory::write_row_cells`]: drives every
    /// listed row's sparse load (`loads[row]`) in one sweep. State,
    /// [`MachineStats`] and crossbar statistics are bit-identical to calling
    /// the per-line API once per listed row, in any order — writes to
    /// distinct lines commute and ECC updates are XORs — but the batched
    /// sweep packs each line's cells straight into stack words and
    /// accumulates the ECC deltas per block-row instead of flushing (and
    /// bit-reversing) per line. Ineligible machines (scalar engine, partial
    /// coverage, pre-write checking, `m > 63`) fall back to the per-line
    /// path. All loads are validated before anything is written.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if a listed row or a cell column is out
    /// of range (nothing written).
    ///
    /// # Panics
    ///
    /// Panics if `loads` is shorter than `lines` requires (`loads` is
    /// indexed by line number).
    pub fn write_rows_cells_batched(
        &mut self,
        lines: &[usize],
        loads: &[Vec<(usize, bool)>],
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.write_rows_cells_batched_driven(lines, loads);
        self.clamp_stuck();
        out
    }

    fn write_rows_cells_batched_driven(
        &mut self,
        lines: &[usize],
        loads: &[Vec<(usize, bool)>],
    ) -> Result<()> {
        self.validate_batched(LineAxis::Row, lines, loads)?;
        if !self.supports_fused_rows() {
            for &r in lines {
                self.write_line_cells(LineAxis::Row, r, &loads[r])?;
            }
            return Ok(());
        }
        let (m, stride) = (self.geom.m(), self.stride());
        let mmask = (1u64 << m) - 1;
        let bps = self.geom.blocks_per_side();
        self.sorted_buf.clear();
        self.sorted_buf
            .extend(lines.iter().copied().filter(|&r| !loads[r].is_empty()));
        self.sorted_buf.sort_unstable();
        self.eccacc_buf.clear();
        self.eccacc_buf.resize(bps, (0, 0));
        self.blkcol_buf.clear();
        let mut cur_br = usize::MAX;
        for idx in 0..self.sorted_buf.len() {
            let r = self.sorted_buf[idx];
            let br = r / m;
            if br != cur_br {
                self.flush_ecc_group(cur_br, m);
                cur_br = br;
            }
            let mut cm = [0u64; MAX_FUSED_STRIDE];
            let mut nv = [0u64; MAX_FUSED_STRIDE];
            for &(c, v) in &loads[r] {
                let (wi, bit) = (c / 64, 1u64 << (c % 64));
                cm[wi] |= bit;
                if v {
                    nv[wi] |= bit;
                } else {
                    nv[wi] &= !bit;
                }
            }
            let mut chg = [0u64; MAX_FUSED_STRIDE];
            {
                let row = self.mem.grid().row_words(r);
                for wi in 0..stride {
                    if cm[wi] != 0 {
                        chg[wi] = (row[wi] ^ nv[wi]) & cm[wi];
                    }
                }
            }
            self.mem
                .write_row_words_masked(r, &nv[..stride], &cm[..stride]);
            self.stats.mem_cycles += 1;
            self.bill_critical();
            self.accumulate_row_ecc(r, &cm, &chg, m, mmask, stride, bps);
        }
        self.flush_ecc_group(cur_br, m);
        Ok(())
    }

    /// Batched form of [`ProtectedMemory::write_col_cells`] — the transpose
    /// of [`ProtectedMemory::write_rows_cells_batched`], with one extra
    /// twist: column stores are strided bit-scatters, so the batched sweep
    /// first *transposes* every column's cells into reusable row-major
    /// staging planes and then drives each touched row with a single masked
    /// word store. Distinct columns never alias a cell, the masked stores
    /// are zero-cycle on the crossbar either way, and billing stays one MEM
    /// cycle plus one critical protocol per driven (non-empty) column, so
    /// state and statistics are bit-identical to the per-column path.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if a listed column or a cell row is out
    /// of range (nothing written).
    ///
    /// # Panics
    ///
    /// Panics if `loads` is shorter than `lines` requires (`loads` is
    /// indexed by line number).
    pub fn write_cols_cells_batched(
        &mut self,
        lines: &[usize],
        loads: &[Vec<(usize, bool)>],
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.write_cols_cells_batched_driven(lines, loads);
        self.clamp_stuck();
        out
    }

    fn write_cols_cells_batched_driven(
        &mut self,
        lines: &[usize],
        loads: &[Vec<(usize, bool)>],
    ) -> Result<()> {
        self.validate_batched(LineAxis::Col, lines, loads)?;
        if !self.supports_fused_rows() {
            for &c in lines {
                self.write_line_cells(LineAxis::Col, c, &loads[c])?;
            }
            return Ok(());
        }
        let (n, m, stride) = (self.geom.n(), self.geom.m(), self.stride());
        let mmask = (1u64 << m) - 1;
        let bps = self.geom.blocks_per_side();
        self.stage_val.resize(n * stride, 0);
        self.stage_msk.resize(n * stride, 0);
        self.stage_rows.resize(n.div_ceil(64), 0);
        let mut driven = 0u64;
        for &c in lines {
            let cells = &loads[c];
            if cells.is_empty() {
                continue;
            }
            let (wi, bit) = (c / 64, 1u64 << (c % 64));
            for &(r, v) in cells {
                let base = r * stride + wi;
                self.stage_msk[base] |= bit;
                if v {
                    self.stage_val[base] |= bit;
                } else {
                    self.stage_val[base] &= !bit;
                }
                self.stage_rows[r / 64] |= 1u64 << (r % 64);
            }
            driven += 1;
        }
        // Per-column billing, exactly as the per-line path: one MEM cycle
        // plus one critical protocol per driven column (full coverage makes
        // every non-empty column critical).
        self.stats.mem_cycles += 3 * driven;
        self.stats.transfer_cycles += 2 * driven;
        self.stats.pc_xor3_ops += 2 * driven;
        self.stats.critical_ops += driven;
        self.drive_staged_rows(m, mmask, stride, bps);
        Ok(())
    }

    /// Drives every row flagged in `stage_rows` with the masked word held
    /// in the row-major staging planes, restoring the planes to all-zero
    /// as it goes; ECC deltas accumulate per block-row. Shared tail of the
    /// column-axis batched writers — column billing has already been done
    /// by the caller, so this only performs the (zero-cycle) masked stores
    /// and the CMEM updates.
    fn drive_staged_rows(&mut self, m: usize, mmask: u64, stride: usize, bps: usize) {
        self.eccacc_buf.clear();
        self.eccacc_buf.resize(bps, (0, 0));
        self.blkcol_buf.clear();
        let mut cur_br = usize::MAX;
        for rw in 0..self.stage_rows.len() {
            let mut wbits = self.stage_rows[rw];
            self.stage_rows[rw] = 0;
            while wbits != 0 {
                let r = rw * 64 + wbits.trailing_zeros() as usize;
                wbits &= wbits - 1;
                let br = r / m;
                if br != cur_br {
                    self.flush_ecc_group(cur_br, m);
                    cur_br = br;
                }
                let base = r * stride;
                let mut cm = [0u64; MAX_FUSED_STRIDE];
                let mut nv = [0u64; MAX_FUSED_STRIDE];
                cm[..stride].copy_from_slice(&self.stage_msk[base..base + stride]);
                nv[..stride].copy_from_slice(&self.stage_val[base..base + stride]);
                self.stage_msk[base..base + stride].fill(0);
                self.stage_val[base..base + stride].fill(0);
                let mut chg = [0u64; MAX_FUSED_STRIDE];
                {
                    let row = self.mem.grid().row_words(r);
                    for wi in 0..stride {
                        if cm[wi] != 0 {
                            chg[wi] = (row[wi] ^ nv[wi]) & cm[wi];
                        }
                    }
                }
                self.mem
                    .write_row_words_masked(r, &nv[..stride], &cm[..stride]);
                self.accumulate_row_ecc(r, &cm, &chg, m, mmask, stride, bps);
            }
        }
        self.flush_ecc_group(cur_br, m);
    }

    /// Word-plane form of [`ProtectedMemory::write_rows_cells_batched`]:
    /// the loads arrive already packed into row-major bit planes — word `w`
    /// of row `r` lives at `r * stride + w` of `masks`/`vals` — instead of
    /// sparse `(col, bool)` lists, skipping the per-cell scatter entirely.
    /// Every set `vals` bit must have its `masks` bit set. Listed rows with
    /// an all-zero mask are not driven (and not billed), exactly like an
    /// empty cell list. Touched plane words are restored to zero, so a
    /// caller can reuse the planes allocation-free. State and statistics
    /// are bit-identical to the cells path.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if a listed row is out of range or a mask
    /// sets a bit at column `>= n` (nothing written).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not on the fused word path (callers gate on
    /// [`ProtectedMemory::supports_fused_rows`]) or the planes are shorter
    /// than `n * stride` words.
    pub fn write_rows_words_batched(
        &mut self,
        lines: &[usize],
        masks: &mut [u64],
        vals: &mut [u64],
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.write_rows_words_batched_driven(lines, masks, vals);
        self.clamp_stuck();
        out
    }

    fn write_rows_words_batched_driven(
        &mut self,
        lines: &[usize],
        masks: &mut [u64],
        vals: &mut [u64],
    ) -> Result<()> {
        assert!(
            self.supports_fused_rows(),
            "word-plane writes require the fused word path"
        );
        let (n, m, stride) = (self.geom.n(), self.geom.m(), self.stride());
        let mmask = (1u64 << m) - 1;
        let bps = self.geom.blocks_per_side();
        let tail_keep = match n % 64 {
            0 => u64::MAX,
            t => (1u64 << t) - 1,
        };
        for &r in lines {
            if r >= n {
                return Err(CoreError::OutOfBounds { row: r, col: 0, n });
            }
            if masks[r * stride + stride - 1] & !tail_keep != 0 {
                return Err(CoreError::OutOfBounds { row: r, col: n, n });
            }
        }
        self.sorted_buf.clear();
        self.sorted_buf.extend(
            lines
                .iter()
                .copied()
                .filter(|&r| masks[r * stride..(r + 1) * stride].iter().any(|&w| w != 0)),
        );
        self.sorted_buf.sort_unstable();
        self.eccacc_buf.clear();
        self.eccacc_buf.resize(bps, (0, 0));
        self.blkcol_buf.clear();
        let mut cur_br = usize::MAX;
        for idx in 0..self.sorted_buf.len() {
            let r = self.sorted_buf[idx];
            let br = r / m;
            if br != cur_br {
                self.flush_ecc_group(cur_br, m);
                cur_br = br;
            }
            let base = r * stride;
            let mut cm = [0u64; MAX_FUSED_STRIDE];
            let mut nv = [0u64; MAX_FUSED_STRIDE];
            cm[..stride].copy_from_slice(&masks[base..base + stride]);
            nv[..stride].copy_from_slice(&vals[base..base + stride]);
            masks[base..base + stride].fill(0);
            vals[base..base + stride].fill(0);
            let mut chg = [0u64; MAX_FUSED_STRIDE];
            {
                let row = self.mem.grid().row_words(r);
                for wi in 0..stride {
                    if cm[wi] != 0 {
                        chg[wi] = (row[wi] ^ nv[wi]) & cm[wi];
                    }
                }
            }
            self.mem
                .write_row_words_masked(r, &nv[..stride], &cm[..stride]);
            self.stats.mem_cycles += 1;
            self.bill_critical();
            self.accumulate_row_ecc(r, &cm, &chg, m, mmask, stride, bps);
        }
        self.flush_ecc_group(cur_br, m);
        Ok(())
    }

    /// Word-plane form of [`ProtectedMemory::write_cols_cells_batched`]:
    /// the loads arrive packed into *column-major* bit planes — word `rw`
    /// of column `c` (covering rows `64·rw ..`) lives at `c * stride + rw`
    /// — and the sweep transposes them 64×64 tile by tile into the
    /// row-major staging planes before driving each touched row once.
    /// Every set `vals` bit must have its `masks` bit set. Listed columns
    /// with an all-zero mask are not driven (and not billed). Touched plane
    /// words are restored to zero. State and statistics are bit-identical
    /// to the cells path.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if a listed column is out of range or a
    /// mask sets a bit at row `>= n` (nothing written).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not on the fused word path (callers gate on
    /// [`ProtectedMemory::supports_fused_rows`]) or the planes are shorter
    /// than `n * stride` words.
    pub fn write_cols_words_batched(
        &mut self,
        lines: &[usize],
        masks: &mut [u64],
        vals: &mut [u64],
    ) -> Result<()> {
        self.unclamp_stuck();
        let out = self.write_cols_words_batched_driven(lines, masks, vals);
        self.clamp_stuck();
        out
    }

    fn write_cols_words_batched_driven(
        &mut self,
        lines: &[usize],
        masks: &mut [u64],
        vals: &mut [u64],
    ) -> Result<()> {
        assert!(
            self.supports_fused_rows(),
            "word-plane writes require the fused word path"
        );
        let (n, m, stride) = (self.geom.n(), self.geom.m(), self.stride());
        let mmask = (1u64 << m) - 1;
        let bps = self.geom.blocks_per_side();
        let tail_keep = match n % 64 {
            0 => u64::MAX,
            t => (1u64 << t) - 1,
        };
        let mut driven = 0u64;
        for &c in lines {
            if c >= n {
                return Err(CoreError::OutOfBounds { row: 0, col: c, n });
            }
            if masks[c * stride + stride - 1] & !tail_keep != 0 {
                return Err(CoreError::OutOfBounds { row: n, col: c, n });
            }
            if masks[c * stride..(c + 1) * stride].iter().any(|&w| w != 0) {
                driven += 1;
            }
        }
        self.stage_val.resize(n * stride, 0);
        self.stage_msk.resize(n * stride, 0);
        self.stage_rows.resize(n.div_ceil(64), 0);
        // Transpose the column planes into row-major staging, one 64×64
        // tile at a time; the planes are zeroed as they are consumed.
        for cw in 0..stride {
            let c0 = cw * 64;
            let cols = 64.min(n - c0);
            for rw in 0..stride {
                let mut mt = [0u64; 64];
                let mut vt = [0u64; 64];
                let mut any = 0u64;
                for (i, (mo, vo)) in mt.iter_mut().zip(vt.iter_mut()).enumerate().take(cols) {
                    let base = (c0 + i) * stride + rw;
                    *mo = masks[base];
                    *vo = vals[base];
                    any |= *mo;
                    masks[base] = 0;
                    vals[base] = 0;
                }
                if any == 0 {
                    continue;
                }
                transpose64(&mut mt);
                transpose64(&mut vt);
                for (j, (&mw, &vw)) in mt.iter().zip(vt.iter()).enumerate() {
                    if mw == 0 {
                        continue;
                    }
                    let r = rw * 64 + j;
                    let base = r * stride + cw;
                    self.stage_msk[base] |= mw;
                    self.stage_val[base] |= vw & mw;
                    self.stage_rows[r / 64] |= 1u64 << (r % 64);
                }
            }
        }
        // Per-column billing, exactly as the cells path.
        self.stats.mem_cycles += 3 * driven;
        self.stats.transfer_cycles += 2 * driven;
        self.stats.pc_xor3_ops += 2 * driven;
        self.stats.critical_ops += driven;
        self.drive_staged_rows(m, mmask, stride, bps);
        Ok(())
    }

    /// Resets an entire block to LRS (all ones) and writes its check-bits
    /// *directly* instead of running the XOR3 protocol per cell — the
    /// paper's footnote 3 fast path ("when resetting an entire block then
    /// the block's ECC can also be reset directly"). Costs m init cycles
    /// on the MEM plus one CMEM write, versus m·m critical-op protocols.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on bad block indices; MAGIC errors are
    /// impossible for an init.
    pub fn reset_block(&mut self, block_row: usize, block_col: usize) -> Result<()> {
        self.unclamp_stuck();
        let out = self.reset_block_driven(block_row, block_col);
        self.clamp_stuck();
        out
    }

    fn reset_block_driven(&mut self, block_row: usize, block_col: usize) -> Result<()> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        let m = self.geom.m();
        let cols: Vec<usize> = (block_col * m..(block_col + 1) * m).collect();
        // m parallel row-inits sweep the block (one per row of the block).
        for r in block_row * m..(block_row + 1) * m {
            self.mem.exec_init_rows(&cols, &LineSet::One(r))?;
        }
        self.stats.mem_cycles += m as u64;
        if self.covered[self.block_index(block_row, block_col)] {
            // All-ones block: every diagonal holds m ones, and m is odd,
            // so every parity bit is 1.
            let ones = vec![true; m];
            self.cmem
                .store_block_checks(block_row, block_col, &ones, &ones);
            self.stats.transfer_cycles += 1;
        }
        Ok(())
    }

    /// Flips a data memristor without the controller noticing — a soft
    /// error. A cell pinned by [`ProtectedMemory::set_stuck`] cannot be
    /// flipped; the strike is absorbed by the wedged state.
    pub fn inject_fault(&mut self, r: usize, c: usize) {
        if self.is_stuck(r, c) {
            return;
        }
        self.mem.flip_bit(r, c);
    }

    /// Pins cell `(r, c)` of the MEM at `value` — a permanent stuck-at
    /// fault from endurance wear-out. From this point on, every driven
    /// operation behaves as if the write succeeded (the check-bits keep
    /// encoding the intended data), but the stored bit stays wedged: any
    /// check of the block re-detects the mismatch whenever the intended
    /// value differs, and the correction write-back is refused (read-back
    /// disagrees), reclassifying the verdict as uncorrectable. Scrubbing
    /// never re-bases a block holding a pinned cell, so the evidence
    /// persists until a layer above retires the line.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn set_stuck(&mut self, r: usize, c: usize, value: bool) {
        let n = self.geom.n();
        assert!(r < n && c < n, "stuck cell ({r},{c}) outside {n}x{n}");
        match self.stuck.binary_search_by_key(&(r, c), |s| (s.row, s.col)) {
            Ok(i) => self.stuck[i].value = value,
            Err(i) => {
                let intended = self.mem.bit(r, c);
                self.stuck.insert(
                    i,
                    StuckCell {
                        row: r,
                        col: c,
                        value,
                        intended,
                    },
                );
            }
        }
        self.mem.force_bit(r, c, value);
    }

    /// The stuck-at fault plane, sorted by `(row, col)`.
    pub fn stuck_cells(&self) -> &[StuckCell] {
        &self.stuck
    }

    /// Whether any cell is pinned.
    pub fn has_stuck_cells(&self) -> bool {
        !self.stuck.is_empty()
    }

    /// Whether block-row `block_row` holds a pinned cell — the gate for a
    /// targeted post-execution check (in this model, only the fault plane
    /// can make freshly driven data disagree with its check-bits).
    pub fn block_row_has_stuck(&self, block_row: usize) -> bool {
        let m = self.geom.m();
        self.stuck.iter().any(|s| s.row / m == block_row)
    }

    /// Column transpose of [`ProtectedMemory::block_row_has_stuck`].
    pub fn block_col_has_stuck(&self, block_col: usize) -> bool {
        let m = self.geom.m();
        self.stuck.iter().any(|s| s.col / m == block_col)
    }

    fn is_stuck(&self, r: usize, c: usize) -> bool {
        !self.stuck.is_empty()
            && self
                .stuck
                .binary_search_by_key(&(r, c), |s| (s.row, s.col))
                .is_ok()
    }

    fn block_has_stuck(&self, br: usize, bc: usize) -> bool {
        let m = self.geom.m();
        self.stuck
            .iter()
            .any(|s| s.row / m == br && s.col / m == bc)
    }

    /// Restores the controller's intended values into the grid for the
    /// duration of one driven operation: the diff-maintained check-bits
    /// must see the driven old state, and gate dynamics compute on driven
    /// values. No-op while the plane is already lifted (re-entrant callers)
    /// or empty.
    fn unclamp_stuck(&mut self) {
        if self.stuck.is_empty() || !self.stuck_clamped {
            return;
        }
        self.stuck_clamped = false;
        for i in 0..self.stuck.len() {
            let s = self.stuck[i];
            self.mem.force_bit(s.row, s.col, s.intended);
        }
    }

    /// Re-asserts the fault plane after a driven operation: records what
    /// the operation drove into each pinned cell (the new intended value
    /// the check-bits now encode) and wedges the stored bit back at the
    /// stuck value.
    fn clamp_stuck(&mut self) {
        if self.stuck.is_empty() || self.stuck_clamped {
            return;
        }
        self.stuck_clamped = true;
        for i in 0..self.stuck.len() {
            let (r, c) = (self.stuck[i].row, self.stuck[i].col);
            let driven = self.mem.bit(r, c);
            self.stuck[i].intended = driven;
            if driven != self.stuck[i].value {
                let v = self.stuck[i].value;
                self.mem.force_bit(r, c, v);
            }
        }
    }

    /// Flips a check-bit memristor — a soft error striking the CMEM.
    pub fn inject_check_fault(
        &mut self,
        family: Family,
        d: usize,
        block_row: usize,
        block_col: usize,
    ) {
        self.cmem.inject_fault(family, d, block_row, block_col);
    }

    /// Checks (and repairs) one covered block. Returns what was found.
    /// Uncovered blocks report [`ErrorLocation::None`] without inspection.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on bad block indices.
    pub fn check_block(&mut self, block_row: usize, block_col: usize) -> Result<ErrorLocation> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        if !self.covered[self.block_index(block_row, block_col)] {
            return Ok(ErrorLocation::None);
        }
        if self.word_blocks() {
            return Ok(self.check_block_word(block_row, block_col));
        }
        let m = self.geom.m();
        let mut block = self.extract_block(block_row, block_col);
        let mut lead = self
            .cmem
            .block_checks(Family::Leading, block_row, block_col);
        let mut counter = self
            .cmem
            .block_checks(Family::Counter, block_row, block_col);
        let mut loc = self.code.correct(&mut block, &mut lead, &mut counter);
        self.stats.blocks_checked += 1;
        match loc {
            ErrorLocation::None => {}
            ErrorLocation::Uncorrectable => self.stats.errors_uncorrectable += 1,
            ErrorLocation::Data {
                local_row,
                local_col,
            } => {
                // Drive the corrected value back into the MEM.
                let (r, c) = (block_row * m + local_row, block_col * m + local_col);
                self.stats.mem_cycles += 1;
                if self.is_stuck(r, c) {
                    // The write-back pulse cannot switch a wedged cell —
                    // read-back disagrees, so the block is beyond this
                    // code's repair.
                    self.stats.errors_uncorrectable += 1;
                    loc = ErrorLocation::Uncorrectable;
                } else {
                    self.mem.write_bit(r, c, block.get(local_row, local_col));
                    self.stats.errors_corrected += 1;
                }
            }
            ErrorLocation::LeadingCheck { .. } | ErrorLocation::CounterCheck { .. } => {
                self.cmem
                    .store_block_checks(block_row, block_col, &lead, &counter);
                self.stats.errors_corrected += 1;
            }
        }
        Ok(loc)
    }

    /// Word-diff [`ProtectedMemory::check_block`]: syndromes are two packed
    /// XORs of recomputed vs stored parity words; a single data error is
    /// located from the two lone syndrome bits.
    fn check_block_word(&mut self, block_row: usize, block_col: usize) -> ErrorLocation {
        let m = self.geom.m();
        self.fill_block_rows(block_row, block_col);
        let (lead_calc, counter_calc) = self.code.encode_words(&self.blockrow_buf);
        let syn_lead = lead_calc
            ^ self
                .cmem
                .block_checks_word(Family::Leading, block_row, block_col);
        let syn_counter = counter_calc
            ^ self
                .cmem
                .block_checks_word(Family::Counter, block_row, block_col);
        self.stats.blocks_checked += 1;
        match (syn_lead.count_ones(), syn_counter.count_ones()) {
            (0, 0) => ErrorLocation::None,
            (1, 1) => {
                let (local_row, local_col) = self.geom.locate(
                    syn_lead.trailing_zeros() as usize,
                    syn_counter.trailing_zeros() as usize,
                );
                let (r, c) = (block_row * m + local_row, block_col * m + local_col);
                self.stats.mem_cycles += 1;
                if self.is_stuck(r, c) {
                    // Write-back refused by the wedged cell (see the
                    // scalar checker): reclassify as uncorrectable.
                    self.stats.errors_uncorrectable += 1;
                    return ErrorLocation::Uncorrectable;
                }
                let corrected = !self.mem.bit(r, c);
                self.mem.write_bit(r, c, corrected);
                self.stats.errors_corrected += 1;
                ErrorLocation::Data {
                    local_row,
                    local_col,
                }
            }
            (1, 0) => {
                let diagonal = syn_lead.trailing_zeros() as usize;
                self.cmem.set_bit(
                    Family::Leading,
                    diagonal,
                    block_row,
                    block_col,
                    lead_calc >> diagonal & 1 != 0,
                );
                self.stats.errors_corrected += 1;
                ErrorLocation::LeadingCheck { diagonal }
            }
            (0, 1) => {
                let diagonal = syn_counter.trailing_zeros() as usize;
                self.cmem.set_bit(
                    Family::Counter,
                    diagonal,
                    block_row,
                    block_col,
                    counter_calc >> diagonal & 1 != 0,
                );
                self.stats.errors_corrected += 1;
                ErrorLocation::CounterCheck { diagonal }
            }
            _ => {
                self.stats.errors_uncorrectable += 1;
                ErrorLocation::Uncorrectable
            }
        }
    }

    /// Checks a whole row of blocks — the paper's pre-execution input check
    /// (§IV: the row is copied into the CMEM datapath in m MAGIC NOT
    /// cycles, reduced by XOR3 trees, and compared in the checking
    /// crossbar).
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on a bad block-row index.
    pub fn check_block_row(&mut self, block_row: usize) -> Result<CheckReport> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: 0,
                n: self.geom.n(),
            });
        }
        self.bill_block_line_check();
        if self.word_blocks() && self.fully_covered {
            return Ok(self.check_block_row_sweep(block_row));
        }
        let mut report = CheckReport::default();
        let word = self.word_blocks();
        for bc in 0..bps {
            // Bounds are loop invariants here; dispatch straight to the
            // checker the engine selects.
            let loc = if !self.covered[self.block_index(block_row, bc)] {
                ErrorLocation::None
            } else if word {
                self.check_block_word(block_row, bc)
            } else {
                self.check_block(block_row, bc)?
            };
            report.checked += 1;
            match loc {
                ErrorLocation::None => {}
                ErrorLocation::Uncorrectable => report.uncorrectable += 1,
                _ => report.corrected += 1,
            }
        }
        Ok(report)
    }

    /// Fully-covered word-path fast sweep of one block row: reads each of
    /// the `m` MEM rows **once**, rotates *every* block column's m-bit
    /// field simultaneously (two whole-row SWAR field rotations per MEM
    /// row — see [`ProtectedMemory::field_rot_xor`] — instead of `bps`
    /// scalar rotations each), then compares all `bps` blocks against the
    /// CMEM. Outcome, reports and statistics are identical to checking
    /// block by block — the per-cell parity contributions are the same
    /// XORs, corrections are block-local, and each block is visited
    /// exactly once.
    fn check_block_row_sweep(&mut self, block_row: usize) -> CheckReport {
        let m = self.geom.m();
        let bps = self.geom.blocks_per_side();
        let stride = self.mem.grid().stride();
        let mmask = (1u64 << m) - 1;
        self.ensure_rot_masks(m, stride, bps);
        self.acc_lead.clear();
        self.acc_lead.resize(stride, 0);
        self.acc_q.clear();
        self.acc_q.resize(stride, 0);
        {
            let grid = self.mem.grid();
            for lr in 0..m {
                let row = grid.row_words(block_row * m + lr);
                let rot_q = m - 1 - lr;
                Self::field_rot_xor(
                    &mut self.acc_lead,
                    row,
                    lr,
                    m,
                    &self.rot_hi[lr * stride..(lr + 1) * stride],
                    &self.rot_lo[lr * stride..(lr + 1) * stride],
                );
                Self::field_rot_xor(
                    &mut self.acc_q,
                    row,
                    rot_q,
                    m,
                    &self.rot_hi[rot_q * stride..(rot_q + 1) * stride],
                    &self.rot_lo[rot_q * stride..(rot_q + 1) * stride],
                );
            }
        }
        let mut report = CheckReport {
            checked: bps,
            ..CheckReport::default()
        };
        self.stats.blocks_checked += bps as u64;
        // Compare all blocks against the CMEM's contiguous per-row check
        // words; only mismatching blocks (rare) take the correction path.
        // `sorted_buf` is free here — the sweep never runs inside the
        // batched writers that own it.
        self.sorted_buf.clear();
        {
            let ProtectedMemory {
                ref cmem,
                ref acc_lead,
                ref acc_q,
                ref mut sorted_buf,
                ..
            } = *self;
            let lead_stored = cmem.family_row(Family::Leading, block_row);
            let ctr_stored = cmem.family_row(Family::Counter, block_row);
            for bc in 0..bps {
                let (lead, ctr) = Self::sweep_fields(acc_lead, acc_q, bc, m, stride, mmask);
                if (lead ^ lead_stored[bc]) | (ctr ^ ctr_stored[bc]) != 0 {
                    sorted_buf.push(bc);
                }
            }
        }
        for i in 0..self.sorted_buf.len() {
            let bc = self.sorted_buf[i];
            let (lead, ctr) = Self::sweep_fields(&self.acc_lead, &self.acc_q, bc, m, stride, mmask);
            let syn_lead = lead ^ self.cmem.block_checks_word(Family::Leading, block_row, bc);
            let syn_ctr = ctr ^ self.cmem.block_checks_word(Family::Counter, block_row, bc);
            self.resolve_block_mismatch(block_row, bc, lead, ctr, syn_lead, syn_ctr, &mut report);
        }
        report
    }

    /// Extracts one block column's computed parity words out of the sweep
    /// accumulators: the leading field as-is, the counter field bit-reversed
    /// (the Q-trick's single reversal per block).
    #[inline]
    fn sweep_fields(
        acc_lead: &[u64],
        acc_q: &[u64],
        bc: usize,
        m: usize,
        stride: usize,
        mmask: u64,
    ) -> (u64, u64) {
        let start = bc * m;
        let (w0, sh) = (start / 64, (start % 64) as u32);
        let mut lead = acc_lead[w0] >> sh;
        let mut q = acc_q[w0] >> sh;
        if sh as usize + m > 64 && w0 + 1 < stride {
            lead |= acc_lead[w0 + 1] << (64 - sh);
            q |= acc_q[w0 + 1] << (64 - sh);
        }
        (lead & mmask, rev_m(q & mmask, m))
    }

    /// XORs a whole-row **per-field left rotation** into `acc`: every
    /// aligned m-bit field of `row` (one per block column, `bps` of them
    /// side by side) is rotated left by `rot` and accumulated, in
    /// `O(stride)` word operations instead of one scalar `rotl_m` per
    /// block. The identity per field is the usual barrel rotate: a big
    /// shift left by `rot` places the bits that stay inside their field
    /// (`hi` mask — positions `>= rot` within the field), a big shift
    /// right by `m - rot` places the wrapped bits (`lo` mask). Bits past
    /// `bps * m` are excluded by both masks.
    #[inline]
    fn field_rot_xor(acc: &mut [u64], row: &[u64], rot: usize, m: usize, hi: &[u64], lo: &[u64]) {
        let stride = acc.len();
        if rot == 0 {
            for w in 0..stride {
                acc[w] ^= row[w] & hi[w];
            }
            return;
        }
        let sh = m - rot;
        let mut prev = 0u64;
        for w in 0..stride {
            let a = row[w] << rot | prev >> (64 - rot);
            let next = if w + 1 < stride { row[w + 1] } else { 0 };
            let b = row[w] >> sh | next << (64 - sh);
            acc[w] ^= (a & hi[w]) | (b & lo[w]);
            prev = row[w];
        }
    }

    /// Builds the per-rotation field masks of the SWAR sweep (cached; a
    /// pure function of the geometry).
    fn ensure_rot_masks(&mut self, m: usize, stride: usize, bps: usize) {
        if self.rot_hi.len() == m * stride {
            return;
        }
        self.rot_hi = vec![0; m * stride];
        self.rot_lo = vec![0; m * stride];
        for rot in 0..m {
            for p in 0..bps * m {
                let (w, bit) = (p / 64, 1u64 << (p % 64));
                if p % m >= rot {
                    self.rot_hi[rot * stride + w] |= bit;
                } else {
                    self.rot_lo[rot * stride + w] |= bit;
                }
            }
        }
    }

    /// Compares one block's freshly computed parity words against the CMEM
    /// and applies the single-error correction — the tail half of
    /// [`ProtectedMemory::check_block_word`], shared by the block-line
    /// sweeps. Statistics and report counts match the per-block checker
    /// exactly.
    fn resolve_block_word(
        &mut self,
        block_row: usize,
        block_col: usize,
        lead_calc: u64,
        counter_calc: u64,
        report: &mut CheckReport,
    ) {
        let syn_lead = lead_calc
            ^ self
                .cmem
                .block_checks_word(Family::Leading, block_row, block_col);
        let syn_counter = counter_calc
            ^ self
                .cmem
                .block_checks_word(Family::Counter, block_row, block_col);
        self.stats.blocks_checked += 1;
        report.checked += 1;
        if syn_lead | syn_counter == 0 {
            return;
        }
        self.resolve_block_mismatch(
            block_row,
            block_col,
            lead_calc,
            counter_calc,
            syn_lead,
            syn_counter,
            report,
        );
    }

    /// The error half of [`ProtectedMemory::resolve_block_word`]: applies
    /// the single-error correction for a block whose syndromes are already
    /// known non-zero. Split out so bulk sweeps can compare syndromes
    /// against contiguous CMEM slices and only fall in here for the rare
    /// mismatching block.
    #[allow(clippy::too_many_arguments)]
    fn resolve_block_mismatch(
        &mut self,
        block_row: usize,
        block_col: usize,
        lead_calc: u64,
        counter_calc: u64,
        syn_lead: u64,
        syn_counter: u64,
        report: &mut CheckReport,
    ) {
        let m = self.geom.m();
        match (syn_lead.count_ones(), syn_counter.count_ones()) {
            (1, 1) => {
                let (local_row, local_col) = self.geom.locate(
                    syn_lead.trailing_zeros() as usize,
                    syn_counter.trailing_zeros() as usize,
                );
                let (r, c) = (block_row * m + local_row, block_col * m + local_col);
                self.stats.mem_cycles += 1;
                if self.is_stuck(r, c) {
                    // Write-back refused by the wedged cell: uncorrectable.
                    self.stats.errors_uncorrectable += 1;
                    report.uncorrectable += 1;
                } else {
                    let corrected = !self.mem.bit(r, c);
                    self.mem.write_bit(r, c, corrected);
                    self.stats.errors_corrected += 1;
                    report.corrected += 1;
                }
            }
            (1, 0) => {
                let diagonal = syn_lead.trailing_zeros() as usize;
                self.cmem.set_bit(
                    Family::Leading,
                    diagonal,
                    block_row,
                    block_col,
                    lead_calc >> diagonal & 1 != 0,
                );
                self.stats.errors_corrected += 1;
                report.corrected += 1;
            }
            (0, 1) => {
                let diagonal = syn_counter.trailing_zeros() as usize;
                self.cmem.set_bit(
                    Family::Counter,
                    diagonal,
                    block_row,
                    block_col,
                    counter_calc >> diagonal & 1 != 0,
                );
                self.stats.errors_corrected += 1;
                report.corrected += 1;
            }
            _ => {
                self.stats.errors_uncorrectable += 1;
                report.uncorrectable += 1;
            }
        }
    }

    /// Transpose of [`ProtectedMemory::check_block_row`]: checks a whole
    /// column of blocks, the pre-execution input check for
    /// *column-parallel* functions (the paper's §IV "row (column)"
    /// symmetry, enabled by the per-family barrel shifters).
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on a bad block-column index.
    pub fn check_block_col(&mut self, block_col: usize) -> Result<CheckReport> {
        let bps = self.geom.blocks_per_side();
        if block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: 0,
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        self.bill_block_line_check();
        if self.word_blocks() && self.fully_covered {
            return Ok(self.check_block_col_sweep(block_col));
        }
        let mut report = CheckReport::default();
        let word = self.word_blocks();
        for br in 0..bps {
            let loc = if !self.covered[self.block_index(br, block_col)] {
                ErrorLocation::None
            } else if word {
                self.check_block_word(br, block_col)
            } else {
                self.check_block(br, block_col)?
            };
            report.checked += 1;
            match loc {
                ErrorLocation::None => {}
                ErrorLocation::Uncorrectable => report.uncorrectable += 1,
                _ => report.corrected += 1,
            }
        }
        Ok(report)
    }

    /// Column transpose of [`ProtectedMemory::check_block_row_sweep`]: the
    /// blocks of one block column share their word/shift addressing, so
    /// each block's parities come straight off its `m` row words without
    /// staging, one bit reversal per block.
    fn check_block_col_sweep(&mut self, block_col: usize) -> CheckReport {
        let m = self.geom.m();
        let bps = self.geom.blocks_per_side();
        let stride = self.mem.grid().stride();
        let mmask = (1u64 << m) - 1;
        let start = block_col * m;
        let (w0, sh) = (start / 64, (start % 64) as u32);
        let spill = sh as usize + m > 64;
        let mut report = CheckReport::default();
        for br in 0..bps {
            let (mut lead, mut q) = (0u64, 0u64);
            {
                let grid = self.mem.grid();
                for lr in 0..m {
                    let row = grid.row_words(br * m + lr);
                    let mut seg = row[w0] >> sh;
                    if spill && w0 + 1 < stride {
                        seg |= row[w0 + 1] << (64 - sh);
                    }
                    seg &= mmask;
                    lead ^= rotl_m(seg, lr, m, mmask);
                    q ^= rotl_m(seg, m - 1 - lr, m, mmask);
                }
            }
            self.resolve_block_word(br, block_col, lead, rev_m(q, m), &mut report);
        }
        report
    }

    /// Bills the datapath cost of one block-line check: m copy cycles
    /// through the shifters plus the ceil-by-3 XOR3 reduction tree per
    /// family.
    fn bill_block_line_check(&mut self) {
        self.stats.mem_cycles += self.geom.m() as u64;
        self.stats.transfer_cycles += self.geom.m() as u64;
        let mut ops = self.geom.m();
        let mut xor3 = 0u64;
        while ops > 1 {
            let stage = ops.div_ceil(3);
            xor3 += stage as u64;
            ops = stage;
        }
        self.stats.pc_xor3_ops += 2 * xor3;
    }

    /// The periodic full-memory check: every covered block is verified and
    /// single errors repaired.
    ///
    /// # Errors
    ///
    /// Infallible in practice; mirrors [`ProtectedMemory::check_block_row`].
    pub fn check_all(&mut self) -> Result<CheckReport> {
        let mut total = CheckReport::default();
        for br in 0..self.geom.blocks_per_side() {
            total += self.check_block_row(br)?;
        }
        Ok(total)
    }

    /// Column-axis variant of [`ProtectedMemory::check_all`]: checks every
    /// block column, as a column-parallel wave does before execution.
    /// Checking all `bps` block columns visits exactly the same block set
    /// as checking all block rows, every check is block-local, and the
    /// datapath bill is the same `bps` line checks — so on the
    /// fully-covered word path this sweeps block *rows* instead, reading
    /// each MEM row once rather than once per column.
    ///
    /// # Errors
    ///
    /// Infallible in practice; mirrors [`ProtectedMemory::check_block_col`].
    pub fn check_all_cols(&mut self) -> Result<CheckReport> {
        let bps = self.geom.blocks_per_side();
        if self.word_blocks() && self.fully_covered {
            let mut total = CheckReport::default();
            for line in 0..bps {
                self.bill_block_line_check();
                total += self.check_block_row_sweep(line);
            }
            return Ok(total);
        }
        let mut total = CheckReport::default();
        for bc in 0..bps {
            total += self.check_block_col(bc)?;
        }
        Ok(total)
    }

    /// Scrub: re-encodes every covered block's check-bits from the current
    /// data — the write-with-ECC sweep a refresh cycle performs. Unlike
    /// [`ProtectedMemory::check_all`] this does not *correct* anything; it
    /// re-bases the code on whatever the data now holds, clearing any
    /// stale parity left by the §III false-positive window.
    pub fn scrub(&mut self) {
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            for bc in 0..bps {
                // A block holding a pinned cell is never re-based: the
                // stored data there is not what the controller drove, and
                // absorbing the wedged value would blind every later check
                // to the hard fault.
                if !self.covered[self.block_index(br, bc)] || self.block_has_stuck(br, bc) {
                    continue;
                }
                self.reencode_block(br, bc);
            }
        }
        // Cost: every row is read and re-encoded once.
        self.stats.mem_cycles += self.geom.n() as u64;
        self.stats.transfer_cycles += self.geom.n() as u64;
    }

    /// Re-encodes one block row's check-bits from current data — the
    /// targeted scrub a device runs right after an uncorrectable verdict,
    /// so multi-bit transient residue cannot later masquerade as a single
    /// correctable error and be "corrected" into consistent garbage.
    /// Blocks holding pinned cells are skipped, as in
    /// [`ProtectedMemory::scrub`].
    pub fn scrub_block_row(&mut self, block_row: usize) {
        let bps = self.geom.blocks_per_side();
        for bc in 0..bps {
            if !self.covered[self.block_index(block_row, bc)] || self.block_has_stuck(block_row, bc)
            {
                continue;
            }
            self.reencode_block(block_row, bc);
        }
        // Cost: the block row's m MEM rows are read and re-encoded once.
        self.stats.mem_cycles += self.geom.m() as u64;
        self.stats.transfer_cycles += self.geom.m() as u64;
    }

    /// Column transpose of [`ProtectedMemory::scrub_block_row`].
    pub fn scrub_block_col(&mut self, block_col: usize) {
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            if !self.covered[self.block_index(br, block_col)] || self.block_has_stuck(br, block_col)
            {
                continue;
            }
            self.reencode_block(br, block_col);
        }
        self.stats.mem_cycles += self.geom.m() as u64;
        self.stats.transfer_cycles += self.geom.m() as u64;
    }

    /// Test oracle: recomputes every covered block's parity from the data
    /// and compares to the stored check-bits, at zero model cost.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent block.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        let bps = self.geom.blocks_per_side();
        if self.word_blocks() {
            let m = self.geom.m();
            let mut rows = vec![0u64; m];
            for br in 0..bps {
                for bc in 0..bps {
                    // Blocks holding pinned cells are legitimately
                    // inconsistent: the oracle cannot demand agreement from
                    // a cell physics wedged.
                    if !self.covered[self.block_index(br, bc)] || self.block_has_stuck(br, bc) {
                        continue;
                    }
                    for (lr, w) in rows.iter_mut().enumerate() {
                        *w = self.mem.grid().extract_bits(br * m + lr, bc * m, m);
                    }
                    let (l, k) = self.code.encode_words(&rows);
                    if l != self.cmem.block_checks_word(Family::Leading, br, bc) {
                        return Err(format!("block ({br},{bc}) leading checks inconsistent"));
                    }
                    if k != self.cmem.block_checks_word(Family::Counter, br, bc) {
                        return Err(format!("block ({br},{bc}) counter checks inconsistent"));
                    }
                }
            }
            return Ok(());
        }
        for br in 0..bps {
            for bc in 0..bps {
                if !self.covered[self.block_index(br, bc)] || self.block_has_stuck(br, bc) {
                    continue;
                }
                let block = self.extract_block(br, bc);
                let (l, k) = self.code.encode(&block);
                if l != self.cmem.block_checks(Family::Leading, br, bc) {
                    return Err(format!("block ({br},{bc}) leading checks inconsistent"));
                }
                if k != self.cmem.block_checks(Family::Counter, br, bc) {
                    return Err(format!("block ({br},{bc}) counter checks inconsistent"));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ProtectedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedMemory")
            .field("geom", &self.geom)
            .field("engine", &self.engine)
            .field("check_on_critical", &self.check_on_critical)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// A step sequence compiled once for repeated fused replay against one
/// machine configuration: the crossbar word plan plus the ECC sweep
/// metadata. Produced by [`ProtectedMemory::compile_fused_rows`] /
/// [`ProtectedMemory::compile_fused_cols`]; batch executors cache one per
/// (program, placement, axis) and replay it every wave via
/// [`ProtectedMemory::exec_fused_rows`] /
/// [`ProtectedMemory::exec_fused_cols`].
#[derive(Clone)]
pub struct FusedProgram {
    kind: FusedKind,
    steps: u64,
}

// Programs are compiled once and cached per (program, placement, axis);
// the size gap between the variants never moves per wave.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum FusedKind {
    Rows {
        plan: FusedRowsPlan,
        /// Touched-column mask of the whole sequence, one word per stride
        /// word.
        colmask: Vec<u64>,
        /// Indices of the non-zero `colmask` words.
        widx: Vec<usize>,
        /// Touched block-columns, ascending.
        blkcols: Vec<usize>,
    },
    Cols {
        plan: FusedColsPlan,
    },
}

impl FusedProgram {
    /// Number of steps in the compiled sequence.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether this program replays row-parallel
    /// ([`ProtectedMemory::exec_fused_rows`]) as opposed to
    /// column-parallel.
    pub fn is_rows(&self) -> bool {
        matches!(self.kind, FusedKind::Rows { .. })
    }
}

/// One worker's share of a fused row-parallel replay: snapshot the touched
/// words of the chunk's rows, run the compiled sequence on the chunk's raw
/// plane slices, then accumulate the net ECC deltas into `acc` — one
/// `(leading, pre-reversal counter)` pair per (block-row, block-column) of
/// the chunk. The counter family needs `rotl(rev(seg), (lr + 1) mod m)` per
/// row; since bit-reversal is GF(2)-linear this equals
/// `rev(rotl(seg, m - 1 - lr))`, so workers accumulate the cheap rotation
/// and the caller reverses each accumulator once at flush time. Chunks are
/// split at block-row boundaries, so the `acc` slices of distinct workers
/// never alias and the flushed CMEM state is independent of the split.
#[allow(clippy::too_many_arguments)]
fn fused_rows_chunk(
    plan: &FusedRowsPlan,
    bits: &mut [u64],
    armed: &mut [u64],
    old: &mut [u64],
    acc: &mut [(u64, u64)],
    rows: std::ops::Range<usize>,
    colmask: &[u64],
    widx: &[usize],
    blkcols: &[usize],
    m: usize,
    stride: usize,
) {
    let per_row = widx.len();
    for li in 0..rows.len() {
        let row = &bits[li * stride..(li + 1) * stride];
        let ob = li * per_row;
        for (k, &wi) in widx.iter().enumerate() {
            old[ob + k] = row[wi];
        }
    }
    plan.run_on_rows(bits, armed);
    let mmask = (1u64 << m) - 1;
    let nbcs = blkcols.len();
    let chunk_first_br = rows.start / m;
    let mut chg = [0u64; MAX_FUSED_STRIDE];
    for r in rows.clone() {
        let li = r - rows.start;
        let row = &bits[li * stride..(li + 1) * stride];
        let ob = li * per_row;
        for (k, &wi) in widx.iter().enumerate() {
            chg[wi] = (row[wi] ^ old[ob + k]) & colmask[wi];
        }
        let (br, lr) = (r / m, r % m);
        let abase = (br - chunk_first_br) * nbcs;
        let rot_q = m - 1 - lr;
        for (j, &bc) in blkcols.iter().enumerate() {
            let start = bc * m;
            let (w0, sh) = (start / 64, start % 64);
            let mut seg = chg[w0] >> sh;
            if sh + m > 64 && w0 + 1 < stride {
                seg |= chg[w0 + 1] << (64 - sh);
            }
            seg &= mmask;
            if seg != 0 {
                let a = &mut acc[abase + j];
                a.0 ^= rotl_m(seg, lr, m, mmask);
                a.1 ^= rotl_m(seg, rot_q, m, mmask);
            }
        }
    }
}

/// Rotate-left within the low `m` bits (`mask = (1 << m) - 1`).
#[inline]
fn rotl_m(w: u64, s: usize, m: usize, mask: u64) -> u64 {
    if s == 0 {
        w
    } else {
        ((w << s) | (w >> (m - s))) & mask
    }
}

/// Reverses the low `m` bits.
#[inline]
fn rev_m(w: u64, m: usize) -> u64 {
    w.reverse_bits() >> (64 - m)
}

/// XORs the check-bit deltas of one *row's* changed cells into the CMEM:
/// `changed_at(wi)` yields the masked change word (packed by global column)
/// at word index `wi`, and every touched block gets one rotated XOR per
/// family — row `r`'s cells map to leading diagonals by a rotation of `lr`
/// and to counter diagonals by a reversal plus rotation, exactly the
/// per-row contribution of [`DiagonalCode::encode_words`]. Requires
/// `m <= 63`.
#[inline]
fn xor_row_major_changes(
    cmem: &mut CheckMemory,
    r: usize,
    blkcols: &[usize],
    m: usize,
    stride: usize,
    mut changed_at: impl FnMut(usize) -> u64,
) {
    let mmask = (1u64 << m) - 1;
    let (lr, br) = (r % m, r / m);
    let rot_counter = (lr + 1) % m;
    let mut w0 = usize::MAX;
    let mut cur = 0u64;
    let mut next = 0u64;
    for &bc in blkcols {
        let start = bc * m;
        let (w, sh) = (start / 64, start % 64);
        if w != w0 {
            w0 = w;
            cur = changed_at(w);
            next = if w + 1 < stride { changed_at(w + 1) } else { 0 };
        }
        if cur == 0 && (sh + m <= 64 || next == 0) {
            continue;
        }
        let mut seg = cur >> sh;
        if sh + m > 64 {
            seg |= next << (64 - sh);
        }
        seg &= mmask;
        if seg == 0 {
            continue;
        }
        let lead = rotl_m(seg, lr, m, mmask);
        let counter = rotl_m(rev_m(seg, m), rot_counter, m, mmask);
        cmem.xor_block_words(br, bc, lead, counter);
    }
}

/// Transpose of [`xor_row_major_changes`]: the changed cells of one
/// *column*, packed one bit per row in `changed_at`. Each block-row's
/// segment maps to leading diagonals by a rotation of the column's local
/// index and to counter diagonals by the opposite rotation (no reversal —
/// the segment is already indexed by local row). Requires `m <= 63`.
///
/// The sweep walks the change words and skips all-zero ones outright, so
/// sparse updates cost O(words), not O(blocks).
#[inline]
fn xor_col_major_changes(
    cmem: &mut CheckMemory,
    col: usize,
    bps: usize,
    m: usize,
    stride: usize,
    mut changed_at: impl FnMut(usize) -> u64,
) {
    let mmask = (1u64 << m) - 1;
    let (lc, bc) = (col % m, col / m);
    let rot_lead = lc;
    let rot_counter = (m - lc) % m;
    let mut w0 = usize::MAX;
    let mut cur = 0u64;
    let mut next = 0u64;
    for br in 0..bps {
        let start = br * m;
        let (w, sh) = (start / 64, start % 64);
        if w != w0 {
            w0 = w;
            cur = changed_at(w);
            next = if w + 1 < stride { changed_at(w + 1) } else { 0 };
        }
        if cur == 0 && (sh + m <= 64 || next == 0) {
            continue;
        }
        let mut seg = cur >> sh;
        if sh + m > 64 {
            seg |= next << (64 - sh);
        }
        seg &= mmask;
        if seg == 0 {
            continue;
        }
        let lead = rotl_m(seg, rot_lead, m, mmask);
        let counter = rotl_m(seg, rot_counter, m, mmask);
        cmem.xor_block_words(br, bc, lead, counter);
    }
}

/// Sets bits `range` of a packed word slice.
fn set_word_range(words: &mut [u64], range: std::ops::Range<usize>) {
    if range.is_empty() {
        return;
    }
    let (first, last) = (range.start / 64, (range.end - 1) / 64);
    let lo = u64::MAX << (range.start % 64);
    let hi = u64::MAX >> (63 - (range.end - 1) % 64);
    if first == last {
        words[first] |= lo & hi;
    } else {
        words[first] |= lo;
        for w in &mut words[first + 1..last] {
            *w = u64::MAX;
        }
        words[last] |= hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize, m: usize) -> ProtectedMemory {
        ProtectedMemory::new(BlockGeometry::new(n, m).unwrap()).unwrap()
    }

    fn random_grid(n: usize, seed: u64) -> BitGrid {
        let mut g = BitGrid::new(n, n);
        let mut s = seed | 1;
        for r in 0..n {
            for c in 0..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                g.set(r, c, s >> 63 != 0);
            }
        }
        g
    }

    #[test]
    fn fresh_machine_is_consistent() {
        let pm = machine(9, 3);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn load_grid_establishes_consistency() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 7));
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn row_parallel_nor_maintains_checks() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 1));
        pm.exec_init_rows(&[4], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 1], 4, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
        assert!(pm.stats().critical_ops >= 2);
    }

    #[test]
    fn col_parallel_nor_maintains_checks() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 2));
        pm.exec_init_cols(&[5], &LineSet::All).unwrap();
        pm.exec_nor_cols(&[0, 2], 5, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn mixed_op_sequence_stays_consistent() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 3));
        for step in 0..10 {
            let col = 5 + step % 5;
            pm.exec_init_rows(&[col], &LineSet::All).unwrap();
            pm.exec_nor_rows(&[step % 3, 3 + step % 2], col, &LineSet::All)
                .unwrap();
            let row = 10 + step % 5;
            pm.exec_init_cols(&[row], &LineSet::Range(0..15)).unwrap();
            pm.exec_nor_cols(&[step % 4, 5], row, &LineSet::Range(0..15))
                .unwrap();
            assert!(pm.verify_consistency().is_ok(), "step {step}");
        }
    }

    #[test]
    fn single_data_fault_is_corrected_by_check_all() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 4));
        let before = pm.bit(7, 11);
        pm.inject_fault(7, 11);
        assert_eq!(pm.bit(7, 11), !before);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(pm.bit(7, 11), before, "data restored");
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn single_check_bit_fault_is_corrected() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 5));
        pm.inject_check_fault(Family::Counter, 1, 2, 0);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn faults_in_different_blocks_all_corrected() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 6));
        pm.inject_fault(0, 0); // block (0,0)
        pm.inject_fault(7, 12); // block (1,2)
        pm.inject_fault(14, 3); // block (2,0)
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 3);
        assert_eq!(report.uncorrectable, 0);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn double_fault_in_one_block_is_reported_uncorrectable() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 8));
        pm.inject_fault(0, 0);
        pm.inject_fault(1, 2); // same block (0,0), general position
        let report = pm.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(pm.stats().errors_uncorrectable, 1);
    }

    #[test]
    fn uncovered_scratch_blocks_skip_ecc() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(1, 1, false).unwrap();
        let criticals_before = pm.stats().critical_ops;
        // Operate entirely inside the scratch block (rows 3..6, cols 3..6).
        pm.exec_init_rows(&[4], &LineSet::Range(3..6)).unwrap();
        pm.exec_nor_rows(&[3, 5], 4, &LineSet::Range(3..6)).unwrap();
        assert_eq!(
            pm.stats().critical_ops,
            criticals_before,
            "scratch ops are non-critical"
        );
        // A fault there is invisible to checks (by design).
        pm.inject_fault(4, 4);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn recovering_coverage_reencodes() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        pm.exec_init_rows(&[1], &LineSet::Range(0..3)).unwrap(); // scratch write
        pm.set_block_covered(0, 0, true).unwrap(); // re-encode happens here
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn mixed_covered_uncovered_write_updates_only_covered() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        // Column 1 crosses blocks (0,0) [uncovered], (1,0), (2,0) [covered].
        pm.exec_init_rows(&[1], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 2], 1, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn check_block_col_transposes_check_block_row() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 12));
        pm.inject_fault(4, 1); // block (1, 0)
        let report = pm.check_block_col(0).unwrap();
        assert_eq!(report.checked, 3);
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
        assert!(matches!(
            pm.check_block_col(5),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn check_block_row_reports_and_costs() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 11));
        pm.inject_fault(1, 4); // block (0,1)
        let cycles_before = pm.stats().mem_cycles;
        let report = pm.check_block_row(0).unwrap();
        assert_eq!(report.checked, 3);
        assert_eq!(report.corrected, 1);
        // m copy cycles plus one corrective write.
        assert_eq!(pm.stats().mem_cycles - cycles_before, 3 + 1);
    }

    #[test]
    fn critical_op_cost_model() {
        let mut pm = machine(9, 3);
        let s0 = *pm.stats();
        pm.exec_init_rows(&[0], &LineSet::All).unwrap();
        let s1 = *pm.stats();
        // 1 gate cycle + 2 transfers; 2 XOR3s (leading + counter).
        assert_eq!(s1.mem_cycles - s0.mem_cycles, 3);
        assert_eq!(s1.transfer_cycles - s0.transfer_cycles, 2);
        assert_eq!(s1.pc_xor3_ops - s0.pc_xor3_ops, 2);
        assert_eq!(s1.critical_ops - s0.critical_ops, 1);
    }

    #[test]
    fn out_of_bounds_block_indices_error() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.check_block(5, 0),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.set_block_covered(0, 9, true),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.check_block_row(3),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn check_on_critical_closes_the_false_positive_window() {
        // Same scenario as `fault_then_critical_overwrite_leaves_stale_
        // parity`, but with pre-write checking: the fault is corrected
        // BEFORE the overwrite cancels its effect, so no false positive
        // ever forms and no data is silently wrong.
        let mut pm = machine(9, 3);
        let grid = random_grid(9, 13);
        pm.load_grid(&grid);
        pm.set_check_on_critical(true);
        assert!(pm.check_on_critical());
        pm.inject_fault(0, 0);
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        // Parity never went stale...
        assert!(pm.verify_consistency().is_ok());
        // ...the fault was corrected by the pre-write check...
        assert_eq!(pm.stats().errors_corrected, 1);
        // ...and a subsequent full check finds nothing left to fix.
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(report.uncorrectable, 0);
        // Every untouched cell still matches the loaded data.
        for r in 0..9 {
            for c in 0..9 {
                if (r, c) != (0, 0) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn precheck_costs_cycles_but_full_width_ops_still_work() {
        let mut pm = machine(9, 3);
        pm.set_check_on_critical(true);
        pm.exec_init_rows(&[4], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 1], 4, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
        // The init + nor each prechecked the 3 blocks of column 4's block
        // column.
        assert_eq!(pm.stats().blocks_checked, 6);
    }

    #[test]
    fn reset_block_fast_path_is_consistent_and_cheap() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 17));
        let cycles_before = pm.stats().mem_cycles;
        let criticals_before = pm.stats().critical_ops;
        pm.reset_block(1, 2).unwrap();
        // m init cycles, zero critical-op protocols.
        assert_eq!(pm.stats().mem_cycles - cycles_before, 3);
        assert_eq!(pm.stats().critical_ops, criticals_before);
        // Block is all ones and the direct ECC write is consistent.
        for r in 3..6 {
            for c in 6..9 {
                assert!(pm.bit(r, c), "({r},{c})");
            }
        }
        assert!(pm.verify_consistency().is_ok());
        assert!(matches!(
            pm.reset_block(9, 0),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn reset_block_on_uncovered_block_skips_cmem() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        pm.reset_block(0, 0).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn scrub_rebases_stale_parity_without_correcting() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 21));
        // Create a stale-parity state via the false-positive window.
        pm.inject_fault(0, 0);
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        assert!(pm.verify_consistency().is_err());
        let corrected_before = pm.stats().errors_corrected;
        pm.scrub();
        assert!(pm.verify_consistency().is_ok());
        assert_eq!(
            pm.stats().errors_corrected,
            corrected_before,
            "scrub corrects nothing"
        );
        // And a subsequent check finds a clean memory.
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
    }

    #[test]
    fn write_row_cells_is_non_destructive_and_consistent() {
        let mut pm = machine(15, 5);
        let grid = random_grid(15, 19);
        pm.load_grid(&grid);
        pm.write_row_cells(7, &[(0, true), (1, false), (13, true)])
            .unwrap();
        assert!(pm.bit(7, 0) && !pm.bit(7, 1) && pm.bit(7, 13));
        // Every untouched cell keeps its loaded value.
        for r in 0..15 {
            for c in 0..15 {
                if r != 7 || ![0, 1, 13].contains(&c) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn write_row_cells_costs_one_mem_cycle_plus_protocol() {
        let mut pm = machine(9, 3);
        let before = *pm.stats();
        pm.write_row_cells(0, &[(0, true), (5, true)]).unwrap();
        let delta = *pm.stats() - before;
        // 1 row write + 2 protocol transfers billed to the MEM.
        assert_eq!(delta.mem_cycles, 3);
        assert_eq!(delta.critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
        // Writing the values already present changes nothing and is free of
        // XOR3 work beyond the protocol bookkeeping.
        let before = *pm.stats();
        pm.write_row_cells(0, &[(0, true)]).unwrap();
        assert_eq!((*pm.stats() - before).critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn write_row_cells_tolerates_duplicate_columns() {
        let mut pm = machine(9, 3);
        // Same column listed twice (and with conflicting values): the last
        // value wins and the parity is updated exactly once.
        pm.write_row_cells(0, &[(3, false), (3, true), (3, true)])
            .unwrap();
        assert!(pm.bit(0, 3));
        assert!(pm.verify_consistency().is_ok());
        // A subsequent check finds nothing to "correct".
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
        assert!(pm.bit(0, 3), "data not clobbered by a false positive");
    }

    #[test]
    fn write_row_cells_bounds_and_empty() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.write_row_cells(9, &[(0, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.write_row_cells(0, &[(9, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        let before = *pm.stats();
        pm.write_row_cells(0, &[]).unwrap();
        assert_eq!(
            *pm.stats() - before,
            MachineStats::default(),
            "empty write is free"
        );
    }

    #[test]
    fn write_col_cells_transposes_write_row_cells() {
        let mut pm = machine(15, 5);
        let grid = random_grid(15, 23);
        pm.load_grid(&grid);
        let before = *pm.stats();
        pm.write_col_cells(7, &[(0, true), (1, false), (13, true)])
            .unwrap();
        let delta = *pm.stats() - before;
        assert!(pm.bit(0, 7) && !pm.bit(1, 7) && pm.bit(13, 7));
        // Every untouched cell keeps its loaded value.
        for r in 0..15 {
            for c in 0..15 {
                if c != 7 || ![0, 1, 13].contains(&r) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
        // Same cost model as the row-major path: 1 driven cycle + the
        // critical-operation protocol of the touched covered blocks.
        assert_eq!(delta.mem_cycles, 3);
        assert_eq!(delta.critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
        // Duplicate rows: last value wins, parity updated exactly once.
        pm.write_col_cells(2, &[(4, false), (4, true), (4, true)])
            .unwrap();
        assert!(pm.bit(4, 2));
        assert!(pm.verify_consistency().is_ok());
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
    }

    #[test]
    fn write_col_cells_bounds_and_empty() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.write_col_cells(9, &[(0, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.write_col_cells(0, &[(9, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        let before = *pm.stats();
        pm.write_col_cells(0, &[]).unwrap();
        assert_eq!(
            *pm.stats() - before,
            MachineStats::default(),
            "empty write is free"
        );
    }

    #[test]
    fn stats_delta_subtracts_per_counter() {
        let a = MachineStats {
            mem_cycles: 10,
            critical_ops: 4,
            ..Default::default()
        };
        let b = MachineStats {
            mem_cycles: 3,
            critical_ops: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.mem_cycles, 7);
        assert_eq!(d.critical_ops, 3);
        assert_eq!(
            b - a,
            MachineStats::default(),
            "saturates instead of wrapping"
        );
    }

    #[test]
    fn stats_aggregate_adds_per_counter() {
        let a = MachineStats {
            mem_cycles: 10,
            blocks_checked: 2,
            ..Default::default()
        };
        let mut sum = MachineStats {
            mem_cycles: 3,
            errors_corrected: 1,
            ..Default::default()
        };
        sum += a;
        assert_eq!(sum.mem_cycles, 13);
        assert_eq!(sum.blocks_checked, 2);
        assert_eq!(sum.errors_corrected, 1);
        assert_eq!(a + MachineStats::default(), a, "zero is the identity");
    }

    #[test]
    fn fault_then_critical_overwrite_leaves_stale_parity() {
        // The paper's documented false-positive window (§III): a fault that
        // is overwritten before any check leaves the checks believing the
        // *pre-fault* value was cancelled. The machine reproduces that
        // behaviour faithfully: consistency is momentarily broken and the
        // next check mis-attributes the error.
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 13));
        pm.inject_fault(0, 0);
        // Overwrite cell (0,0) via an init (critical): cancel uses the
        // faulty old value.
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        // The block parity is now stale even though data is fine.
        assert!(pm.verify_consistency().is_err());
        let report = pm.check_all().unwrap();
        // The checker "corrects" something (a false positive), after which
        // the ECC is self-consistent again.
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    /// Runs one mixed op/fault/check scenario on a given engine.
    fn engine_scenario(n: usize, m: usize, engine: SimEngine) -> (ProtectedMemory, CheckReport) {
        let mut pm = machine(n, m);
        pm.set_engine(engine);
        assert_eq!(pm.engine(), engine);
        pm.load_grid(&random_grid(n, 29));
        pm.set_block_covered(1, 1, false).unwrap();
        for step in 0..6 {
            let col = (m + step) % n;
            pm.exec_init_rows(&[col], &LineSet::All).unwrap();
            pm.exec_nor_rows(&[(col + 1) % n, (col + 2) % n], col, &LineSet::All)
                .unwrap();
            let row = (2 * m + step) % n;
            pm.exec_init_cols(&[row], &LineSet::Range(0..n)).unwrap();
            pm.exec_nor_cols(&[(row + 3) % n, (row + 5) % n], row, &LineSet::Range(0..n))
                .unwrap();
        }
        pm.write_row_cells(1, &[(0, true), (n - 1, false)]).unwrap();
        pm.write_col_cells(n - 1, &[(0, false), (m, true)]).unwrap();
        pm.inject_fault(0, n - 1);
        pm.inject_check_fault(Family::Leading, 1, 0, 0);
        let report = pm.check_all().unwrap();
        (pm, report)
    }

    #[test]
    fn engines_are_bit_identical_on_a_mixed_scenario() {
        for (n, m) in [(9usize, 3usize), (15, 5), (70, 7)] {
            let (word, wr) = engine_scenario(n, m, SimEngine::WordParallel);
            let (scalar, sr) = engine_scenario(n, m, SimEngine::ScalarReference);
            assert_eq!(
                word.mem().grid().diff(scalar.mem().grid()),
                vec![],
                "{n}/{m}"
            );
            assert_eq!(word.stats(), scalar.stats(), "{n}/{m}");
            assert_eq!(wr, sr, "{n}/{m}");
            assert_eq!(
                word.verify_consistency(),
                scalar.verify_consistency(),
                "{n}/{m}"
            );
        }
    }

    #[test]
    fn paranoid_engines_agree_on_prechecked_ops() {
        for engine in [SimEngine::WordParallel, SimEngine::ScalarReference] {
            let mut pm = machine(9, 3);
            pm.set_engine(engine);
            pm.set_check_on_critical(true);
            pm.exec_init_rows(&[4], &LineSet::All).unwrap();
            pm.exec_nor_rows(&[0, 1], 4, &LineSet::All).unwrap();
            pm.exec_init_cols(&[2], &LineSet::Range(0..9)).unwrap();
            pm.exec_nor_cols(&[0, 8], 2, &LineSet::Range(0..9)).unwrap();
            assert!(pm.verify_consistency().is_ok(), "{engine:?}");
            assert_eq!(pm.stats().blocks_checked, 12, "{engine:?}");
        }
    }

    #[test]
    fn word_engine_handles_geometry_past_the_word_boundary() {
        // n = 65: line words have a 1-bit slack tail, the block grid is
        // 13x13 of 5x5 blocks, and columns 64.. live in the second word.
        let mut pm = machine(65, 5);
        pm.load_grid(&random_grid(65, 31));
        pm.exec_init_rows(&[63, 64], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 1], 63, &LineSet::All).unwrap();
        pm.exec_nor_rows(&[2], 64, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
        pm.inject_fault(64, 64);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn stuck_cell_refuses_correction_and_stays_detected() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 11));
        let intended = pm.bit(2, 2);
        pm.set_stuck(2, 2, !intended);
        assert_eq!(pm.bit(2, 2), !intended, "cell reads the wedged value");
        // Every check re-detects the fault, refuses the write-back, and
        // classifies it uncorrectable — no silent "repair" into the wedge.
        for pass in 0..3 {
            let report = pm.check_all().unwrap();
            assert_eq!(report.corrected, 0, "pass {pass}");
            assert_eq!(report.uncorrectable, 1, "pass {pass}");
            assert_eq!(pm.bit(2, 2), !intended, "pass {pass}");
        }
        assert_eq!(pm.stats().errors_uncorrectable, 3);
        assert_eq!(pm.stats().errors_corrected, 0);
    }

    #[test]
    fn writes_cannot_overwrite_a_stuck_cell() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 13));
        pm.set_stuck(4, 7, true);
        pm.write_row_cells(4, &[(7, false), (8, true)]).unwrap();
        assert!(pm.bit(4, 7), "plane re-asserts the wedged value");
        assert!(pm.bit(4, 8), "healthy neighbour takes the write");
        // The check-bits track the *driven* value, so the mismatch is
        // visible as an uncorrectable error, not absorbed.
        let report = pm.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
    }

    #[test]
    fn stuck_cell_matching_the_driven_value_is_benign_until_contradicted() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 17));
        let value = pm.bit(5, 1);
        pm.set_stuck(5, 1, value);
        let report = pm.check_all().unwrap();
        assert_eq!((report.corrected, report.uncorrectable), (0, 0));
        pm.write_row_cells(5, &[(1, !value)]).unwrap();
        assert_eq!(pm.bit(5, 1), value, "write bounced off the wedge");
        let report = pm.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
    }

    #[test]
    fn scrub_repairs_transients_but_never_absorbs_stuck_faults() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 19));
        let intended = pm.bit(2, 3);
        pm.set_stuck(2, 3, !intended); // block (0,0)
        pm.inject_fault(8, 8); // transient in block (1,1)
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1, "transient repaired");
        assert_eq!(report.uncorrectable, 1, "hard fault refused");
        pm.scrub();
        // The scrub must not re-base the stuck block: the fault is still
        // detected (and still refused) on the next pass.
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(report.uncorrectable, 1);
    }

    #[test]
    fn inject_fault_cannot_flip_a_wedged_cell() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 23));
        pm.set_stuck(1, 1, true);
        pm.inject_fault(1, 1);
        assert!(pm.bit(1, 1), "a soft error cannot move a wedged cell");
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
    }

    #[test]
    fn scrub_block_line_clears_multibit_transient_residue() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 27));
        pm.inject_fault(0, 0);
        pm.inject_fault(1, 2); // same block (0,0): uncorrectable pattern
        let report = pm.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
        // After the layer above suppresses the affected outputs, a targeted
        // re-encode re-bases the block so the residue cannot later be
        // "corrected" into consistent garbage by a single-error decode.
        pm.scrub_block_row(0);
        let report = pm.check_all().unwrap();
        assert_eq!((report.corrected, report.uncorrectable), (0, 0));
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn scrub_block_col_rebases_like_scrub_block_row() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 33));
        pm.inject_fault(3, 4);
        pm.inject_fault(5, 5); // same block (1,1)
        assert_eq!(pm.check_all().unwrap().uncorrectable, 1);
        pm.scrub_block_col(1);
        let report = pm.check_all().unwrap();
        assert_eq!((report.corrected, report.uncorrectable), (0, 0));
        assert!(pm.verify_consistency().is_ok());
    }

    fn stuck_scenario(n: usize, m: usize, engine: SimEngine) -> (ProtectedMemory, CheckReport) {
        let mut pm = machine(n, m);
        pm.set_engine(engine);
        pm.load_grid(&random_grid(n, 37));
        pm.set_stuck(1, 2, true);
        pm.set_stuck(n - 1, n - 2, false);
        for step in 0..4 {
            let col = (m + step) % n;
            pm.exec_init_rows(&[col], &LineSet::All).unwrap();
            pm.exec_nor_rows(&[(col + 1) % n, (col + 2) % n], col, &LineSet::All)
                .unwrap();
            let row = (2 * m + step) % n;
            pm.exec_init_cols(&[row], &LineSet::Range(0..n)).unwrap();
            pm.exec_nor_cols(&[(row + 3) % n, (row + 5) % n], row, &LineSet::Range(0..n))
                .unwrap();
        }
        pm.write_row_cells(1, &[(2, false), (n - 1, true)]).unwrap();
        pm.inject_fault(0, n - 1);
        let report = pm.check_all().unwrap();
        (pm, report)
    }

    #[test]
    fn engines_are_bit_identical_under_stuck_faults() {
        for (n, m) in [(9usize, 3usize), (15, 5), (70, 7)] {
            let (word, wr) = stuck_scenario(n, m, SimEngine::WordParallel);
            let (scalar, sr) = stuck_scenario(n, m, SimEngine::ScalarReference);
            assert_eq!(
                word.mem().grid().diff(scalar.mem().grid()),
                vec![],
                "{n}/{m}"
            );
            assert_eq!(word.stats(), scalar.stats(), "{n}/{m}");
            assert_eq!(wr, sr, "{n}/{m}");
            assert_eq!(word.stuck_cells(), scalar.stuck_cells(), "{n}/{m}");
        }
    }
}
