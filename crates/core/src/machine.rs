//! The integrated protected memory: a MAGIC crossbar (MEM) whose writes to
//! ECC-covered blocks transparently maintain the diagonal check-bits in the
//! CMEM, with fault injection, per-block checking and correction.
//!
//! The machine reproduces the paper's critical-operation protocol (§IV):
//!
//! 1. cancel the old data's effect on the check-bits,
//! 2. perform the MAGIC operation in the MEM,
//! 3. add the new data's effect on the check-bits,
//!
//! where steps 1 and 3 are XOR3 updates executed in processing crossbars
//! fed through the barrel shifters. Functionally the two XORs collapse to
//! `check ⊕= old ⊕ new` per touched diagonal; the cycle cost of the full
//! protocol is tracked in [`MachineStats`].
//!
//! Coverage is per *block*: function inputs and outputs live in covered
//! blocks (checked and continuously updated); intermediate scratch blocks
//! can be marked uncovered, matching the paper's model where only function
//! inputs/outputs are protected.

use crate::cmem::CheckMemory;
use crate::code::{DiagonalCode, ErrorLocation};
use crate::error::CoreError;
use crate::geometry::BlockGeometry;
use crate::shifter::Family;
use crate::Result;
use pimecc_xbar::{BitGrid, Crossbar, LineSet};

/// Cycle/event accounting for the protected memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MachineStats {
    /// MEM-side clock cycles (gates, inits, transfers).
    pub mem_cycles: u64,
    /// MEM cycles that were data transfers to/from the CMEM datapath.
    pub transfer_cycles: u64,
    /// XOR3 micro-programs executed in processing crossbars (8 NORs each).
    pub pc_xor3_ops: u64,
    /// Critical operations executed (writes into covered blocks).
    pub critical_ops: u64,
    /// Block checks performed.
    pub blocks_checked: u64,
    /// Errors corrected (data or check-bit).
    pub errors_corrected: u64,
    /// Uncorrectable (multi-error) blocks encountered.
    pub errors_uncorrectable: u64,
}

impl std::ops::Sub for MachineStats {
    type Output = MachineStats;

    /// Saturating per-counter difference — `after - before` yields the
    /// stats of everything that happened between two snapshots, which is
    /// how batched executions report their own share of the machine's
    /// activity.
    fn sub(self, earlier: MachineStats) -> MachineStats {
        MachineStats {
            mem_cycles: self.mem_cycles.saturating_sub(earlier.mem_cycles),
            transfer_cycles: self.transfer_cycles.saturating_sub(earlier.transfer_cycles),
            pc_xor3_ops: self.pc_xor3_ops.saturating_sub(earlier.pc_xor3_ops),
            critical_ops: self.critical_ops.saturating_sub(earlier.critical_ops),
            blocks_checked: self.blocks_checked.saturating_sub(earlier.blocks_checked),
            errors_corrected: self
                .errors_corrected
                .saturating_sub(earlier.errors_corrected),
            errors_uncorrectable: self
                .errors_uncorrectable
                .saturating_sub(earlier.errors_uncorrectable),
        }
    }
}

impl std::ops::Add for MachineStats {
    type Output = MachineStats;

    /// Per-counter sum — how a multi-crossbar layer (a device pool, a
    /// sharded cluster) folds the activity of its members into one
    /// aggregate account.
    fn add(self, other: MachineStats) -> MachineStats {
        MachineStats {
            mem_cycles: self.mem_cycles + other.mem_cycles,
            transfer_cycles: self.transfer_cycles + other.transfer_cycles,
            pc_xor3_ops: self.pc_xor3_ops + other.pc_xor3_ops,
            critical_ops: self.critical_ops + other.critical_ops,
            blocks_checked: self.blocks_checked + other.blocks_checked,
            errors_corrected: self.errors_corrected + other.errors_corrected,
            errors_uncorrectable: self.errors_uncorrectable + other.errors_uncorrectable,
        }
    }
}

impl std::ops::AddAssign for MachineStats {
    /// In-place per-counter sum (see the [`Add`](std::ops::Add) impl).
    fn add_assign(&mut self, other: MachineStats) {
        *self = *self + other;
    }
}

/// Outcome summary of a checking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Blocks examined.
    pub checked: usize,
    /// Single errors corrected (data or check-bits).
    pub corrected: usize,
    /// Blocks left with detected-but-uncorrectable patterns.
    pub uncorrectable: usize,
}

impl std::ops::AddAssign for CheckReport {
    /// Folds another pass's counts into this report.
    fn add_assign(&mut self, other: CheckReport) {
        self.checked += other.checked;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }
}

/// A MAGIC crossbar with continuously maintained diagonal ECC.
///
/// See the crate-level example. All `exec_*` methods mirror the raw
/// [`Crossbar`] API; criticality (whether the ECC must be updated) is
/// decided automatically from the coverage map of the written cells.
#[derive(Debug, Clone)]
pub struct ProtectedMemory {
    geom: BlockGeometry,
    code: DiagonalCode,
    mem: Crossbar,
    cmem: CheckMemory,
    /// Coverage per block, indexed `[block_row * bps + block_col]`.
    covered: Vec<bool>,
    /// When set, every critical operation first ECC-checks the blocks it
    /// is about to overwrite (closes the §III false-positive window at the
    /// price of a check per write — the "locally decodable codes" future
    /// work of the paper, realized with the hardware already present).
    check_on_critical: bool,
    stats: MachineStats,
}

impl ProtectedMemory {
    /// Creates an all-zero protected memory (data and check-bits
    /// consistent), with every block covered.
    ///
    /// # Errors
    ///
    /// Currently infallible for a valid [`BlockGeometry`]; the `Result`
    /// reserves room for configuration validation.
    pub fn new(geom: BlockGeometry) -> Result<Self> {
        Ok(ProtectedMemory {
            geom,
            code: DiagonalCode::new(geom),
            mem: Crossbar::new(geom.n(), geom.n()),
            cmem: CheckMemory::new(geom),
            covered: vec![true; geom.block_count()],
            check_on_critical: false,
            stats: MachineStats::default(),
        })
    }

    /// Enables or disables the pre-write ECC check of critical
    /// operations. Off by default (the paper's configuration, which
    /// accepts the rare false positive documented in its §III).
    pub fn set_check_on_critical(&mut self, enabled: bool) {
        self.check_on_critical = enabled;
    }

    /// Whether pre-write checking is enabled.
    pub fn check_on_critical(&self) -> bool {
        self.check_on_critical
    }

    /// ECC-checks the distinct covered blocks containing `cells` (the
    /// pre-write verification pass).
    fn precheck_blocks(&mut self, cells: &[(usize, usize)]) -> Result<()> {
        let mut blocks: Vec<(usize, usize)> = cells
            .iter()
            .map(|&(r, c)| self.geom.block_of(r, c))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        for (br, bc) in blocks {
            if self.covered[self.block_index(br, bc)] {
                self.check_block(br, bc)?;
            }
        }
        Ok(())
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &BlockGeometry {
        &self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Read-only view of the underlying MEM crossbar.
    pub fn mem(&self) -> &Crossbar {
        &self.mem
    }

    /// Read-only view of the CMEM.
    pub fn cmem(&self) -> &CheckMemory {
        &self.cmem
    }

    /// Reads one data bit (observability helper, zero cycles).
    pub fn bit(&self, r: usize, c: usize) -> bool {
        self.mem.bit(r, c)
    }

    fn block_index(&self, block_row: usize, block_col: usize) -> usize {
        block_row * self.geom.blocks_per_side() + block_col
    }

    /// Marks a block as ECC-covered or as uncovered scratch. Newly covering
    /// a block re-encodes its check-bits so the invariant holds.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if the block indices are out of range.
    pub fn set_block_covered(
        &mut self,
        block_row: usize,
        block_col: usize,
        covered: bool,
    ) -> Result<()> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        let idx = self.block_index(block_row, block_col);
        if covered && !self.covered[idx] {
            // Re-encode on coverage entry (a write-with-ECC sweep).
            let block = self.extract_block(block_row, block_col);
            let (l, k) = self.code.encode(&block);
            self.cmem.store_block_checks(block_row, block_col, &l, &k);
            self.stats.mem_cycles += self.geom.m() as u64; // m row reads
            self.stats.transfer_cycles += self.geom.m() as u64;
        }
        self.covered[idx] = covered;
        Ok(())
    }

    /// Whether a block is ECC-covered.
    pub fn block_covered(&self, block_row: usize, block_col: usize) -> bool {
        self.covered[self.block_index(block_row, block_col)]
    }

    fn is_cell_covered(&self, r: usize, c: usize) -> bool {
        let (br, bc) = self.geom.block_of(r, c);
        self.covered[self.block_index(br, bc)]
    }

    fn extract_block(&self, block_row: usize, block_col: usize) -> BitGrid {
        let m = self.geom.m();
        let mut g = BitGrid::new(m, m);
        for r in 0..m {
            for c in 0..m {
                g.set(r, c, self.mem.bit(block_row * m + r, block_col * m + c));
            }
        }
        g
    }

    /// Bulk-loads a full data grid, recomputing every covered block's
    /// check-bits (the "ECC computed along write" path of a conventional
    /// memory).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not n×n.
    pub fn load_grid(&mut self, data: &BitGrid) {
        let n = self.geom.n();
        assert_eq!((data.rows(), data.cols()), (n, n), "grid must be {n}x{n}");
        for r in 0..n {
            let row = data.row(r);
            self.mem.write_row(r, &row);
        }
        self.stats.mem_cycles += n as u64;
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            for bc in 0..bps {
                if self.covered[self.block_index(br, bc)] {
                    let block = self.extract_block(br, bc);
                    let (l, k) = self.code.encode(&block);
                    self.cmem.store_block_checks(br, bc, &l, &k);
                }
            }
        }
    }

    /// Writes the given `(column, value)` pairs into one row through the
    /// conventional write-with-ECC path, leaving every other cell of the
    /// memory untouched — the per-request load primitive of batched
    /// execution, where many requests occupy distinct rows of the same
    /// crossbar. One driven-row MEM cycle plus the critical-operation
    /// protocol for the touched covered blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if `row` or any column is out of range.
    pub fn write_row_cells(&mut self, row: usize, cells: &[(usize, bool)]) -> Result<()> {
        let n = self.geom.n();
        if row >= n {
            return Err(CoreError::OutOfBounds { row, col: 0, n });
        }
        if let Some(&(col, _)) = cells.iter().find(|&&(c, _)| c >= n) {
            return Err(CoreError::OutOfBounds { row, col, n });
        }
        if cells.is_empty() {
            return Ok(());
        }
        // Deduplicate columns (last value wins): the old-value snapshot is
        // taken once per physical cell, so a duplicate entry must not XOR
        // the same diagonal twice and corrupt the parity.
        let mut unique: Vec<(usize, bool)> = Vec::with_capacity(cells.len());
        for &(c, v) in cells {
            match unique.iter_mut().find(|(uc, _)| *uc == c) {
                Some(entry) => entry.1 = v,
                None => unique.push((c, v)),
            }
        }
        if self.check_on_critical {
            let coords: Vec<(usize, usize)> = unique.iter().map(|&(c, _)| (row, c)).collect();
            self.precheck_blocks(&coords)?;
        }
        let old: Vec<(usize, usize, bool)> = unique
            .iter()
            .map(|&(c, _)| (row, c, self.mem.bit(row, c)))
            .collect();
        for &(c, v) in &unique {
            self.mem.write_bit(row, c, v);
        }
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Transpose of [`ProtectedMemory::write_row_cells`]: writes the given
    /// `(row, value)` pairs into one *column* through the write-with-ECC
    /// path, leaving every other cell untouched — the per-request load
    /// primitive for **column-parallel** batched execution, where requests
    /// occupy distinct columns (the paper's §IV "row (column)" symmetry).
    /// One driven-column MEM cycle plus the critical-operation protocol for
    /// the touched covered blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] if `col` or any row is out of range.
    pub fn write_col_cells(&mut self, col: usize, cells: &[(usize, bool)]) -> Result<()> {
        let n = self.geom.n();
        if col >= n {
            return Err(CoreError::OutOfBounds { row: 0, col, n });
        }
        if let Some(&(row, _)) = cells.iter().find(|&&(r, _)| r >= n) {
            return Err(CoreError::OutOfBounds { row, col, n });
        }
        if cells.is_empty() {
            return Ok(());
        }
        // Deduplicate rows (last value wins) for the same parity-safety
        // reason as the row-major path.
        let mut unique: Vec<(usize, bool)> = Vec::with_capacity(cells.len());
        for &(r, v) in cells {
            match unique.iter_mut().find(|(ur, _)| *ur == r) {
                Some(entry) => entry.1 = v,
                None => unique.push((r, v)),
            }
        }
        if self.check_on_critical {
            let coords: Vec<(usize, usize)> = unique.iter().map(|&(r, _)| (r, col)).collect();
            self.precheck_blocks(&coords)?;
        }
        let old: Vec<(usize, usize, bool)> = unique
            .iter()
            .map(|&(r, _)| (r, col, self.mem.bit(r, col)))
            .collect();
        for &(r, v) in &unique {
            self.mem.write_bit(r, col, v);
        }
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Applies the continuous ECC update for a set of written cells, given
    /// their prior values. Cells in uncovered blocks are skipped.
    fn update_checks(&mut self, cells: &[(usize, usize, bool)]) {
        let mut any_covered = false;
        for &(r, c, old) in cells {
            if !self.is_cell_covered(r, c) {
                continue;
            }
            any_covered = true;
            let new = self.mem.bit(r, c);
            if old != new {
                let (br, bc) = self.geom.block_of(r, c);
                let (lr, lc) = self.geom.local_of(r, c);
                self.cmem
                    .xor_bit(Family::Leading, self.geom.leading(lr, lc), br, bc, true);
                self.cmem
                    .xor_bit(Family::Counter, self.geom.counter(lr, lc), br, bc, true);
            }
        }
        if any_covered {
            // Critical-operation protocol cost: old transfer + new transfer
            // on the MEM; two XOR3 programs (leading + counter) in a PC.
            self.stats.critical_ops += 1;
            self.stats.mem_cycles += 2;
            self.stats.transfer_cycles += 2;
            self.stats.pc_xor3_ops += 2;
        }
    }

    /// Row-parallel MAGIC NOR (see [`Crossbar::exec_nor_rows`]); maintains
    /// ECC for covered blocks automatically.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_nor_rows(
        &mut self,
        in_cols: &[usize],
        out_col: usize,
        rows: &LineSet,
    ) -> Result<()> {
        let idx = rows.indices(self.mem.rows());
        if self.check_on_critical {
            let cells: Vec<(usize, usize)> = idx.iter().map(|&r| (r, out_col)).collect();
            self.precheck_blocks(&cells)?;
        }
        let old: Vec<(usize, usize, bool)> = idx
            .iter()
            .map(|&r| (r, out_col, self.mem.bit(r, out_col)))
            .collect();
        self.mem.exec_nor_rows(in_cols, out_col, rows)?;
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Column-parallel MAGIC NOR with automatic ECC maintenance.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_nor_cols(
        &mut self,
        in_rows: &[usize],
        out_row: usize,
        cols: &LineSet,
    ) -> Result<()> {
        let idx = cols.indices(self.mem.cols());
        if self.check_on_critical {
            let cells: Vec<(usize, usize)> = idx.iter().map(|&c| (out_row, c)).collect();
            self.precheck_blocks(&cells)?;
        }
        let old: Vec<(usize, usize, bool)> = idx
            .iter()
            .map(|&c| (out_row, c, self.mem.bit(out_row, c)))
            .collect();
        self.mem.exec_nor_cols(in_rows, out_row, cols)?;
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Row-parallel initialization with automatic ECC maintenance (the
    /// paper's footnote 3 notes block resets could update ECC directly; the
    /// net effect is identical).
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_init_rows(&mut self, cols: &[usize], rows: &LineSet) -> Result<()> {
        let idx = rows.indices(self.mem.rows());
        if self.check_on_critical {
            let mut cells = Vec::with_capacity(idx.len() * cols.len());
            for &r in &idx {
                for &c in cols {
                    cells.push((r, c));
                }
            }
            self.precheck_blocks(&cells)?;
        }
        let mut old = Vec::with_capacity(idx.len() * cols.len());
        for &r in &idx {
            for &c in cols {
                old.push((r, c, self.mem.bit(r, c)));
            }
        }
        self.mem.exec_init_rows(cols, rows)?;
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Column-parallel initialization with automatic ECC maintenance.
    ///
    /// # Errors
    ///
    /// Propagates MAGIC legality violations as [`CoreError::Xbar`].
    pub fn exec_init_cols(&mut self, rows: &[usize], cols: &LineSet) -> Result<()> {
        let idx = cols.indices(self.mem.cols());
        if self.check_on_critical {
            let mut cells = Vec::with_capacity(idx.len() * rows.len());
            for &c in &idx {
                for &r in rows {
                    cells.push((r, c));
                }
            }
            self.precheck_blocks(&cells)?;
        }
        let mut old = Vec::with_capacity(idx.len() * rows.len());
        for &c in &idx {
            for &r in rows {
                old.push((r, c, self.mem.bit(r, c)));
            }
        }
        self.mem.exec_init_cols(rows, cols)?;
        self.stats.mem_cycles += 1;
        self.update_checks(&old);
        Ok(())
    }

    /// Resets an entire block to LRS (all ones) and writes its check-bits
    /// *directly* instead of running the XOR3 protocol per cell — the
    /// paper's footnote 3 fast path ("when resetting an entire block then
    /// the block's ECC can also be reset directly"). Costs m init cycles
    /// on the MEM plus one CMEM write, versus m·m critical-op protocols.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on bad block indices; MAGIC errors are
    /// impossible for an init.
    pub fn reset_block(&mut self, block_row: usize, block_col: usize) -> Result<()> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        let m = self.geom.m();
        let cols: Vec<usize> = (block_col * m..(block_col + 1) * m).collect();
        // m parallel row-inits sweep the block (one per row of the block).
        for r in block_row * m..(block_row + 1) * m {
            self.mem.exec_init_rows(&cols, &LineSet::One(r))?;
        }
        self.stats.mem_cycles += m as u64;
        if self.covered[self.block_index(block_row, block_col)] {
            // All-ones block: every diagonal holds m ones, and m is odd,
            // so every parity bit is 1.
            let ones = vec![true; m];
            self.cmem
                .store_block_checks(block_row, block_col, &ones, &ones);
            self.stats.transfer_cycles += 1;
        }
        Ok(())
    }

    /// Flips a data memristor without the controller noticing — a soft
    /// error.
    pub fn inject_fault(&mut self, r: usize, c: usize) {
        self.mem.flip_bit(r, c);
    }

    /// Flips a check-bit memristor — a soft error striking the CMEM.
    pub fn inject_check_fault(
        &mut self,
        family: Family,
        d: usize,
        block_row: usize,
        block_col: usize,
    ) {
        self.cmem.inject_fault(family, d, block_row, block_col);
    }

    /// Checks (and repairs) one covered block. Returns what was found.
    /// Uncovered blocks report [`ErrorLocation::None`] without inspection.
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on bad block indices.
    pub fn check_block(&mut self, block_row: usize, block_col: usize) -> Result<ErrorLocation> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps || block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        if !self.covered[self.block_index(block_row, block_col)] {
            return Ok(ErrorLocation::None);
        }
        let m = self.geom.m();
        let mut block = self.extract_block(block_row, block_col);
        let mut lead = self
            .cmem
            .block_checks(Family::Leading, block_row, block_col);
        let mut counter = self
            .cmem
            .block_checks(Family::Counter, block_row, block_col);
        let loc = self.code.correct(&mut block, &mut lead, &mut counter);
        self.stats.blocks_checked += 1;
        match loc {
            ErrorLocation::None => {}
            ErrorLocation::Uncorrectable => self.stats.errors_uncorrectable += 1,
            ErrorLocation::Data {
                local_row,
                local_col,
            } => {
                // Drive the corrected value back into the MEM.
                let (r, c) = (block_row * m + local_row, block_col * m + local_col);
                self.mem.write_bit(r, c, block.get(local_row, local_col));
                self.stats.mem_cycles += 1;
                self.stats.errors_corrected += 1;
            }
            ErrorLocation::LeadingCheck { .. } | ErrorLocation::CounterCheck { .. } => {
                self.cmem
                    .store_block_checks(block_row, block_col, &lead, &counter);
                self.stats.errors_corrected += 1;
            }
        }
        Ok(loc)
    }

    /// Checks a whole row of blocks — the paper's pre-execution input check
    /// (§IV: the row is copied into the CMEM datapath in m MAGIC NOT
    /// cycles, reduced by XOR3 trees, and compared in the checking
    /// crossbar).
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on a bad block-row index.
    pub fn check_block_row(&mut self, block_row: usize) -> Result<CheckReport> {
        let bps = self.geom.blocks_per_side();
        if block_row >= bps {
            return Err(CoreError::OutOfBounds {
                row: block_row * self.geom.m(),
                col: 0,
                n: self.geom.n(),
            });
        }
        // m copy cycles move the block-row through the shifters.
        self.stats.mem_cycles += self.geom.m() as u64;
        self.stats.transfer_cycles += self.geom.m() as u64;
        // XOR3 reduction per family: ceil tree over m copied rows.
        let mut ops = self.geom.m();
        let mut xor3 = 0u64;
        while ops > 1 {
            let stage = ops.div_ceil(3);
            xor3 += stage as u64;
            ops = stage;
        }
        self.stats.pc_xor3_ops += 2 * xor3;
        let mut report = CheckReport::default();
        for bc in 0..bps {
            let loc = self.check_block(block_row, bc)?;
            report.checked += 1;
            match loc {
                ErrorLocation::None => {}
                ErrorLocation::Uncorrectable => report.uncorrectable += 1,
                _ => report.corrected += 1,
            }
        }
        Ok(report)
    }

    /// Transpose of [`ProtectedMemory::check_block_row`]: checks a whole
    /// column of blocks, the pre-execution input check for
    /// *column-parallel* functions (the paper's §IV "row (column)"
    /// symmetry, enabled by the per-family barrel shifters).
    ///
    /// # Errors
    ///
    /// [`CoreError::OutOfBounds`] on a bad block-column index.
    pub fn check_block_col(&mut self, block_col: usize) -> Result<CheckReport> {
        let bps = self.geom.blocks_per_side();
        if block_col >= bps {
            return Err(CoreError::OutOfBounds {
                row: 0,
                col: block_col * self.geom.m(),
                n: self.geom.n(),
            });
        }
        // m copy cycles move the block-column through the shifters.
        self.stats.mem_cycles += self.geom.m() as u64;
        self.stats.transfer_cycles += self.geom.m() as u64;
        let mut ops = self.geom.m();
        let mut xor3 = 0u64;
        while ops > 1 {
            let stage = ops.div_ceil(3);
            xor3 += stage as u64;
            ops = stage;
        }
        self.stats.pc_xor3_ops += 2 * xor3;
        let mut report = CheckReport::default();
        for br in 0..bps {
            let loc = self.check_block(br, block_col)?;
            report.checked += 1;
            match loc {
                ErrorLocation::None => {}
                ErrorLocation::Uncorrectable => report.uncorrectable += 1,
                _ => report.corrected += 1,
            }
        }
        Ok(report)
    }

    /// The periodic full-memory check: every covered block is verified and
    /// single errors repaired.
    ///
    /// # Errors
    ///
    /// Infallible in practice; mirrors [`ProtectedMemory::check_block_row`].
    pub fn check_all(&mut self) -> Result<CheckReport> {
        let mut total = CheckReport::default();
        for br in 0..self.geom.blocks_per_side() {
            total += self.check_block_row(br)?;
        }
        Ok(total)
    }

    /// Scrub: re-encodes every covered block's check-bits from the current
    /// data — the write-with-ECC sweep a refresh cycle performs. Unlike
    /// [`ProtectedMemory::check_all`] this does not *correct* anything; it
    /// re-bases the code on whatever the data now holds, clearing any
    /// stale parity left by the §III false-positive window.
    pub fn scrub(&mut self) {
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            for bc in 0..bps {
                if !self.covered[self.block_index(br, bc)] {
                    continue;
                }
                let block = self.extract_block(br, bc);
                let (l, k) = self.code.encode(&block);
                self.cmem.store_block_checks(br, bc, &l, &k);
            }
        }
        // Cost: every row is read and re-encoded once.
        self.stats.mem_cycles += self.geom.n() as u64;
        self.stats.transfer_cycles += self.geom.n() as u64;
    }

    /// Test oracle: recomputes every covered block's parity from the data
    /// and compares to the stored check-bits, at zero model cost.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent block.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        let bps = self.geom.blocks_per_side();
        for br in 0..bps {
            for bc in 0..bps {
                if !self.covered[self.block_index(br, bc)] {
                    continue;
                }
                let block = self.extract_block(br, bc);
                let (l, k) = self.code.encode(&block);
                if l != self.cmem.block_checks(Family::Leading, br, bc) {
                    return Err(format!("block ({br},{bc}) leading checks inconsistent"));
                }
                if k != self.cmem.block_checks(Family::Counter, br, bc) {
                    return Err(format!("block ({br},{bc}) counter checks inconsistent"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize, m: usize) -> ProtectedMemory {
        ProtectedMemory::new(BlockGeometry::new(n, m).unwrap()).unwrap()
    }

    fn random_grid(n: usize, seed: u64) -> BitGrid {
        let mut g = BitGrid::new(n, n);
        let mut s = seed | 1;
        for r in 0..n {
            for c in 0..n {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                g.set(r, c, s >> 63 != 0);
            }
        }
        g
    }

    #[test]
    fn fresh_machine_is_consistent() {
        let pm = machine(9, 3);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn load_grid_establishes_consistency() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 7));
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn row_parallel_nor_maintains_checks() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 1));
        pm.exec_init_rows(&[4], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 1], 4, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
        assert!(pm.stats().critical_ops >= 2);
    }

    #[test]
    fn col_parallel_nor_maintains_checks() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 2));
        pm.exec_init_cols(&[5], &LineSet::All).unwrap();
        pm.exec_nor_cols(&[0, 2], 5, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn mixed_op_sequence_stays_consistent() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 3));
        for step in 0..10 {
            let col = 5 + step % 5;
            pm.exec_init_rows(&[col], &LineSet::All).unwrap();
            pm.exec_nor_rows(&[step % 3, 3 + step % 2], col, &LineSet::All)
                .unwrap();
            let row = 10 + step % 5;
            pm.exec_init_cols(&[row], &LineSet::Range(0..15)).unwrap();
            pm.exec_nor_cols(&[step % 4, 5], row, &LineSet::Range(0..15))
                .unwrap();
            assert!(pm.verify_consistency().is_ok(), "step {step}");
        }
    }

    #[test]
    fn single_data_fault_is_corrected_by_check_all() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 4));
        let before = pm.bit(7, 11);
        pm.inject_fault(7, 11);
        assert_eq!(pm.bit(7, 11), !before);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(pm.bit(7, 11), before, "data restored");
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn single_check_bit_fault_is_corrected() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 5));
        pm.inject_check_fault(Family::Counter, 1, 2, 0);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn faults_in_different_blocks_all_corrected() {
        let mut pm = machine(15, 5);
        pm.load_grid(&random_grid(15, 6));
        pm.inject_fault(0, 0); // block (0,0)
        pm.inject_fault(7, 12); // block (1,2)
        pm.inject_fault(14, 3); // block (2,0)
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 3);
        assert_eq!(report.uncorrectable, 0);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn double_fault_in_one_block_is_reported_uncorrectable() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 8));
        pm.inject_fault(0, 0);
        pm.inject_fault(1, 2); // same block (0,0), general position
        let report = pm.check_all().unwrap();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(pm.stats().errors_uncorrectable, 1);
    }

    #[test]
    fn uncovered_scratch_blocks_skip_ecc() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(1, 1, false).unwrap();
        let criticals_before = pm.stats().critical_ops;
        // Operate entirely inside the scratch block (rows 3..6, cols 3..6).
        pm.exec_init_rows(&[4], &LineSet::Range(3..6)).unwrap();
        pm.exec_nor_rows(&[3, 5], 4, &LineSet::Range(3..6)).unwrap();
        assert_eq!(
            pm.stats().critical_ops,
            criticals_before,
            "scratch ops are non-critical"
        );
        // A fault there is invisible to checks (by design).
        pm.inject_fault(4, 4);
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn recovering_coverage_reencodes() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        pm.exec_init_rows(&[1], &LineSet::Range(0..3)).unwrap(); // scratch write
        pm.set_block_covered(0, 0, true).unwrap(); // re-encode happens here
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn mixed_covered_uncovered_write_updates_only_covered() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        // Column 1 crosses blocks (0,0) [uncovered], (1,0), (2,0) [covered].
        pm.exec_init_rows(&[1], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 2], 1, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn check_block_col_transposes_check_block_row() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 12));
        pm.inject_fault(4, 1); // block (1, 0)
        let report = pm.check_block_col(0).unwrap();
        assert_eq!(report.checked, 3);
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
        assert!(matches!(
            pm.check_block_col(5),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn check_block_row_reports_and_costs() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 11));
        pm.inject_fault(1, 4); // block (0,1)
        let cycles_before = pm.stats().mem_cycles;
        let report = pm.check_block_row(0).unwrap();
        assert_eq!(report.checked, 3);
        assert_eq!(report.corrected, 1);
        // m copy cycles plus one corrective write.
        assert_eq!(pm.stats().mem_cycles - cycles_before, 3 + 1);
    }

    #[test]
    fn critical_op_cost_model() {
        let mut pm = machine(9, 3);
        let s0 = *pm.stats();
        pm.exec_init_rows(&[0], &LineSet::All).unwrap();
        let s1 = *pm.stats();
        // 1 gate cycle + 2 transfers; 2 XOR3s (leading + counter).
        assert_eq!(s1.mem_cycles - s0.mem_cycles, 3);
        assert_eq!(s1.transfer_cycles - s0.transfer_cycles, 2);
        assert_eq!(s1.pc_xor3_ops - s0.pc_xor3_ops, 2);
        assert_eq!(s1.critical_ops - s0.critical_ops, 1);
    }

    #[test]
    fn out_of_bounds_block_indices_error() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.check_block(5, 0),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.set_block_covered(0, 9, true),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.check_block_row(3),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn check_on_critical_closes_the_false_positive_window() {
        // Same scenario as `fault_then_critical_overwrite_leaves_stale_
        // parity`, but with pre-write checking: the fault is corrected
        // BEFORE the overwrite cancels its effect, so no false positive
        // ever forms and no data is silently wrong.
        let mut pm = machine(9, 3);
        let grid = random_grid(9, 13);
        pm.load_grid(&grid);
        pm.set_check_on_critical(true);
        assert!(pm.check_on_critical());
        pm.inject_fault(0, 0);
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        // Parity never went stale...
        assert!(pm.verify_consistency().is_ok());
        // ...the fault was corrected by the pre-write check...
        assert_eq!(pm.stats().errors_corrected, 1);
        // ...and a subsequent full check finds nothing left to fix.
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(report.uncorrectable, 0);
        // Every untouched cell still matches the loaded data.
        for r in 0..9 {
            for c in 0..9 {
                if (r, c) != (0, 0) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn precheck_costs_cycles_but_full_width_ops_still_work() {
        let mut pm = machine(9, 3);
        pm.set_check_on_critical(true);
        pm.exec_init_rows(&[4], &LineSet::All).unwrap();
        pm.exec_nor_rows(&[0, 1], 4, &LineSet::All).unwrap();
        assert!(pm.verify_consistency().is_ok());
        // The init + nor each prechecked the 3 blocks of column 4's block
        // column.
        assert_eq!(pm.stats().blocks_checked, 6);
    }

    #[test]
    fn reset_block_fast_path_is_consistent_and_cheap() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 17));
        let cycles_before = pm.stats().mem_cycles;
        let criticals_before = pm.stats().critical_ops;
        pm.reset_block(1, 2).unwrap();
        // m init cycles, zero critical-op protocols.
        assert_eq!(pm.stats().mem_cycles - cycles_before, 3);
        assert_eq!(pm.stats().critical_ops, criticals_before);
        // Block is all ones and the direct ECC write is consistent.
        for r in 3..6 {
            for c in 6..9 {
                assert!(pm.bit(r, c), "({r},{c})");
            }
        }
        assert!(pm.verify_consistency().is_ok());
        assert!(matches!(
            pm.reset_block(9, 0),
            Err(CoreError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn reset_block_on_uncovered_block_skips_cmem() {
        let mut pm = machine(9, 3);
        pm.set_block_covered(0, 0, false).unwrap();
        pm.reset_block(0, 0).unwrap();
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn scrub_rebases_stale_parity_without_correcting() {
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 21));
        // Create a stale-parity state via the false-positive window.
        pm.inject_fault(0, 0);
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        assert!(pm.verify_consistency().is_err());
        let corrected_before = pm.stats().errors_corrected;
        pm.scrub();
        assert!(pm.verify_consistency().is_ok());
        assert_eq!(
            pm.stats().errors_corrected,
            corrected_before,
            "scrub corrects nothing"
        );
        // And a subsequent check finds a clean memory.
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
    }

    #[test]
    fn write_row_cells_is_non_destructive_and_consistent() {
        let mut pm = machine(15, 5);
        let grid = random_grid(15, 19);
        pm.load_grid(&grid);
        pm.write_row_cells(7, &[(0, true), (1, false), (13, true)])
            .unwrap();
        assert!(pm.bit(7, 0) && !pm.bit(7, 1) && pm.bit(7, 13));
        // Every untouched cell keeps its loaded value.
        for r in 0..15 {
            for c in 0..15 {
                if r != 7 || ![0, 1, 13].contains(&c) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn write_row_cells_costs_one_mem_cycle_plus_protocol() {
        let mut pm = machine(9, 3);
        let before = *pm.stats();
        pm.write_row_cells(0, &[(0, true), (5, true)]).unwrap();
        let delta = *pm.stats() - before;
        // 1 row write + 2 protocol transfers billed to the MEM.
        assert_eq!(delta.mem_cycles, 3);
        assert_eq!(delta.critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
        // Writing the values already present changes nothing and is free of
        // XOR3 work beyond the protocol bookkeeping.
        let before = *pm.stats();
        pm.write_row_cells(0, &[(0, true)]).unwrap();
        assert_eq!((*pm.stats() - before).critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
    }

    #[test]
    fn write_row_cells_tolerates_duplicate_columns() {
        let mut pm = machine(9, 3);
        // Same column listed twice (and with conflicting values): the last
        // value wins and the parity is updated exactly once.
        pm.write_row_cells(0, &[(3, false), (3, true), (3, true)])
            .unwrap();
        assert!(pm.bit(0, 3));
        assert!(pm.verify_consistency().is_ok());
        // A subsequent check finds nothing to "correct".
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
        assert!(pm.bit(0, 3), "data not clobbered by a false positive");
    }

    #[test]
    fn write_row_cells_bounds_and_empty() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.write_row_cells(9, &[(0, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.write_row_cells(0, &[(9, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        let before = *pm.stats();
        pm.write_row_cells(0, &[]).unwrap();
        assert_eq!(
            *pm.stats() - before,
            MachineStats::default(),
            "empty write is free"
        );
    }

    #[test]
    fn write_col_cells_transposes_write_row_cells() {
        let mut pm = machine(15, 5);
        let grid = random_grid(15, 23);
        pm.load_grid(&grid);
        let before = *pm.stats();
        pm.write_col_cells(7, &[(0, true), (1, false), (13, true)])
            .unwrap();
        let delta = *pm.stats() - before;
        assert!(pm.bit(0, 7) && !pm.bit(1, 7) && pm.bit(13, 7));
        // Every untouched cell keeps its loaded value.
        for r in 0..15 {
            for c in 0..15 {
                if c != 7 || ![0, 1, 13].contains(&r) {
                    assert_eq!(pm.bit(r, c), grid.get(r, c), "({r},{c})");
                }
            }
        }
        // Same cost model as the row-major path: 1 driven cycle + the
        // critical-operation protocol of the touched covered blocks.
        assert_eq!(delta.mem_cycles, 3);
        assert_eq!(delta.critical_ops, 1);
        assert!(pm.verify_consistency().is_ok());
        // Duplicate rows: last value wins, parity updated exactly once.
        pm.write_col_cells(2, &[(4, false), (4, true), (4, true)])
            .unwrap();
        assert!(pm.bit(4, 2));
        assert!(pm.verify_consistency().is_ok());
        let report = pm.check_all().unwrap();
        assert_eq!(report.corrected + report.uncorrectable, 0);
    }

    #[test]
    fn write_col_cells_bounds_and_empty() {
        let mut pm = machine(9, 3);
        assert!(matches!(
            pm.write_col_cells(9, &[(0, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        assert!(matches!(
            pm.write_col_cells(0, &[(9, true)]),
            Err(CoreError::OutOfBounds { .. })
        ));
        let before = *pm.stats();
        pm.write_col_cells(0, &[]).unwrap();
        assert_eq!(
            *pm.stats() - before,
            MachineStats::default(),
            "empty write is free"
        );
    }

    #[test]
    fn stats_delta_subtracts_per_counter() {
        let a = MachineStats {
            mem_cycles: 10,
            critical_ops: 4,
            ..Default::default()
        };
        let b = MachineStats {
            mem_cycles: 3,
            critical_ops: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.mem_cycles, 7);
        assert_eq!(d.critical_ops, 3);
        assert_eq!(
            b - a,
            MachineStats::default(),
            "saturates instead of wrapping"
        );
    }

    #[test]
    fn stats_aggregate_adds_per_counter() {
        let a = MachineStats {
            mem_cycles: 10,
            blocks_checked: 2,
            ..Default::default()
        };
        let mut sum = MachineStats {
            mem_cycles: 3,
            errors_corrected: 1,
            ..Default::default()
        };
        sum += a;
        assert_eq!(sum.mem_cycles, 13);
        assert_eq!(sum.blocks_checked, 2);
        assert_eq!(sum.errors_corrected, 1);
        assert_eq!(a + MachineStats::default(), a, "zero is the identity");
    }

    #[test]
    fn fault_then_critical_overwrite_leaves_stale_parity() {
        // The paper's documented false-positive window (§III): a fault that
        // is overwritten before any check leaves the checks believing the
        // *pre-fault* value was cancelled. The machine reproduces that
        // behaviour faithfully: consistency is momentarily broken and the
        // next check mis-attributes the error.
        let mut pm = machine(9, 3);
        pm.load_grid(&random_grid(9, 13));
        pm.inject_fault(0, 0);
        // Overwrite cell (0,0) via an init (critical): cancel uses the
        // faulty old value.
        pm.exec_init_rows(&[0], &LineSet::One(0)).unwrap();
        // The block parity is now stale even though data is fine.
        assert!(pm.verify_consistency().is_err());
        let report = pm.check_all().unwrap();
        // The checker "corrects" something (a false positive), after which
        // the ECC is self-consistent again.
        assert_eq!(report.corrected, 1);
        assert!(pm.verify_consistency().is_ok());
    }
}
