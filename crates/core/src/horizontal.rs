//! The horizontal-parity strawman of the paper's §III (Fig. 2a), kept as an
//! ablation baseline.
//!
//! Dividing the memory into horizontal groups with one parity bit per group
//! works for row-parallel operations — each group has at most one changed
//! bit, so Θ(1) update suffices — but a *column*-parallel operation changes
//! one bit of `n` different rows in the *same column position*: if the
//! operation writes a parity column the scheme breaks, and in general a
//! single check-bit's group can have all of its data bits rewritten across
//! the array, requiring Θ(n) sequential re-computations. This module
//! quantifies exactly that asymmetry.

use crate::Result;
use pimecc_xbar::BitGrid;

/// Horizontal byte-style parity: one check-bit per `group` consecutive bits
/// of each row.
///
/// # Example
///
/// ```
/// use pimecc_core::horizontal::HorizontalEcc;
///
/// let h = HorizontalEcc::new(8, 8); // paper's byte example, 8x8 toy array
/// // A row-parallel write updates one bit per group: Θ(1) per check-bit.
/// assert_eq!(h.update_ops_row_parallel(), 1);
/// // A column-parallel write across n rows dirties n check-bits, and each
/// // needs its whole group re-read: Θ(n) work on the critical path.
/// assert_eq!(h.update_ops_col_parallel(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizontalEcc {
    n: usize,
    group: usize,
}

impl HorizontalEcc {
    /// Creates the model for an `n×n` array with `group`-bit parity groups.
    ///
    /// # Panics
    ///
    /// Panics if `group` is zero or does not divide `n`.
    pub fn new(n: usize, group: usize) -> Self {
        assert!(group > 0 && n % group == 0, "group must divide n");
        HorizontalEcc { n, group }
    }

    /// Number of parity groups per row.
    pub fn groups_per_row(&self) -> usize {
        self.n / self.group
    }

    /// Check-bit storage cost (one bit per group per row).
    pub fn check_bits(&self) -> usize {
        self.n * self.groups_per_row()
    }

    /// Sequential ECC-update operations after a row-parallel MAGIC op
    /// writing one column: each row's affected group has exactly one
    /// changed bit, and all rows update in parallel — Θ(1).
    pub fn update_ops_row_parallel(&self) -> usize {
        1
    }

    /// Sequential ECC-update operations after a column-parallel MAGIC op
    /// writing one row: the written row has `n` changed bits spread over
    /// its groups, but every *other* row is untouched... the breaking case
    /// the paper highlights is the transpose: a column-parallel op writes
    /// one bit in the same group-position of `n` different check-groups
    /// spread across one column of groups; each of those groups belongs to
    /// a different row and all its updates serialize through the single
    /// horizontal parity tree of that row — Θ(n) total (paper Fig. 2a).
    pub fn update_ops_col_parallel(&self) -> usize {
        self.n
    }

    /// Computes the full parity table of a data grid (for functional
    /// validation of the model).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not n×n.
    pub fn encode(&self, data: &BitGrid) -> Vec<Vec<bool>> {
        assert_eq!((data.rows(), data.cols()), (self.n, self.n));
        (0..self.n)
            .map(|r| {
                (0..self.groups_per_row())
                    .map(|g| {
                        (0..self.group).fold(false, |acc, i| acc ^ data.get(r, g * self.group + i))
                    })
                    .collect()
            })
            .collect()
    }

    /// Detects (but cannot locate within a group) parity violations;
    /// returns `(row, group)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn violations(&self, data: &BitGrid, parity: &[Vec<bool>]) -> Vec<(usize, usize)> {
        let fresh = self.encode(data);
        let mut out = Vec::new();
        for r in 0..self.n {
            for g in 0..self.groups_per_row() {
                if fresh[r][g] != parity[r][g] {
                    out.push((r, g));
                }
            }
        }
        out
    }

    /// Speedup of the diagonal scheme over the horizontal scheme for
    /// column-parallel critical operations (the paper's Θ(n) vs Θ(1)).
    pub fn diagonal_speedup_col_parallel(&self) -> Result<f64> {
        Ok(self.update_ops_col_parallel() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_byte_parity_intuition() {
        // 1 parity bit per 8 data bits: 12.5% overhead.
        let h = HorizontalEcc::new(64, 8);
        assert_eq!(h.check_bits(), 64 * 8);
        assert_eq!(h.groups_per_row(), 8);
    }

    #[test]
    fn encode_detects_single_flip_group() {
        let h = HorizontalEcc::new(8, 4);
        let mut data = BitGrid::new(8, 8);
        data.set(3, 5, true);
        let parity = h.encode(&data);
        assert!(parity[3][1]); // group 1 of row 3 has odd parity
        let mut corrupted = data.clone();
        corrupted.flip(3, 6);
        assert_eq!(h.violations(&corrupted, &parity), vec![(3, 1)]);
    }

    #[test]
    fn row_vs_col_update_asymmetry() {
        let h = HorizontalEcc::new(1024, 8);
        assert_eq!(h.update_ops_row_parallel(), 1);
        assert_eq!(h.update_ops_col_parallel(), 1024);
        assert_eq!(h.diagonal_speedup_col_parallel().unwrap(), 1024.0);
    }

    #[test]
    #[should_panic(expected = "group must divide")]
    fn invalid_grouping_panics() {
        let _ = HorizontalEcc::new(10, 3);
    }

    #[test]
    fn clean_data_has_no_violations() {
        let h = HorizontalEcc::new(8, 8);
        let data = BitGrid::new(8, 8);
        let parity = h.encode(&data);
        assert!(h.violations(&data, &parity).is_empty());
    }
}
