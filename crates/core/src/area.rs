//! Device-count area model — the paper's Table II.
//!
//! The paper reports memristor and transistor counts for the proposed
//! architecture at `n = 1020`, `m = 15`, `k = 3` processing crossbars.
//! Layout-level area is explicitly left to future work there, and here.

use crate::cmem::{CheckMemory, ProcessingCrossbar};
use crate::geometry::BlockGeometry;
use crate::shifter;
use crate::Result;

/// One row of the device-count table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaRow {
    /// Component name as printed in the paper.
    pub unit: &'static str,
    /// Memristor count.
    pub memristors: u64,
    /// Transistor count.
    pub transistors: u64,
    /// The closed-form expression from Table II.
    pub expression: &'static str,
}

/// The Table II device-count model.
///
/// # Example
///
/// ```
/// use pimecc_core::AreaModel;
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let a = AreaModel::paper()?; // n=1020, m=15, k=3
/// assert_eq!(a.total_memristors(), 1_248_480);
/// assert_eq!(a.total_transistors(), 75_480);
/// // Check-bit storage overhead over the raw data array:
/// assert!((a.memristor_overhead_fraction() - 0.20) < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    geom: BlockGeometry,
    /// Processing crossbars per diagonal family.
    k: usize,
}

impl AreaModel {
    /// Builds the model for an `n×n` crossbar, `m×m` blocks and `k`
    /// processing crossbars.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(n: usize, m: usize, k: usize) -> Result<Self> {
        Ok(AreaModel {
            geom: BlockGeometry::new(n, m)?,
            k,
        })
    }

    /// The paper's case study: `n = 1020`, `m = 15`, `k = 3`.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for API symmetry with
    /// [`AreaModel::new`].
    pub fn paper() -> Result<Self> {
        Self::new(1020, 15, 3)
    }

    /// Crossbar dimension.
    pub fn n(&self) -> usize {
        self.geom.n()
    }

    /// Block dimension.
    pub fn m(&self) -> usize {
        self.geom.m()
    }

    /// Processing crossbars per family.
    pub fn k(&self) -> usize {
        self.k
    }

    /// All rows of Table II, in the paper's order.
    pub fn rows(&self) -> Vec<AreaRow> {
        let n = self.geom.n() as u64;
        let k = self.k as u64;
        vec![
            AreaRow {
                unit: "Data (MEM)",
                memristors: n * n,
                transistors: 0,
                expression: "n x n",
            },
            AreaRow {
                unit: "Check-Bits",
                memristors: CheckMemory::new(self.geom).memristor_count(),
                transistors: 0,
                expression: "2 x m x (n/m)^2",
            },
            AreaRow {
                unit: "Processing XBs",
                memristors: ProcessingCrossbar::memristor_count(self.geom.n(), self.k),
                transistors: 0,
                expression: "2 x 11 x k x n",
            },
            AreaRow {
                unit: "Checking XB",
                memristors: 2 * n,
                transistors: 0,
                expression: "2 x n",
            },
            AreaRow {
                unit: "Shifters",
                memristors: 0,
                transistors: shifter::transistor_count(self.geom.n(), self.geom.m()),
                expression: "4 x n x m",
            },
            AreaRow {
                unit: "Connection Unit",
                memristors: 0,
                transistors: 2 * n * (k + 4),
                expression: "2 x n x (k + 4)",
            },
        ]
    }

    /// Total memristors across all components.
    pub fn total_memristors(&self) -> u64 {
        self.rows().iter().map(|r| r.memristors).sum()
    }

    /// Total transistors across all components.
    pub fn total_transistors(&self) -> u64 {
        self.rows().iter().map(|r| r.transistors).sum()
    }

    /// Extra memristors relative to the bare data array (storage
    /// overhead of the mechanism).
    pub fn memristor_overhead_fraction(&self) -> f64 {
        let data = (self.geom.n() * self.geom.n()) as f64;
        (self.total_memristors() as f64 - data) / data
    }
}

impl std::fmt::Display for AreaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>12}   {}",
            "Unit", "# Memristor", "# Transistor", "Expression"
        )?;
        for row in self.rows() {
            writeln!(
                f,
                "{:<16} {:>12} {:>12}   {}",
                row.unit, row.memristors, row.transistors, row.expression
            )?;
        }
        writeln!(
            f,
            "{:<16} {:>12} {:>12}",
            "Total",
            self.total_memristors(),
            self.total_transistors()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every count of the paper's Table II, exactly.
    #[test]
    fn paper_table2_counts() {
        let a = AreaModel::paper().unwrap();
        let rows = a.rows();
        assert_eq!(rows[0].memristors, 1_040_400); // 1.04e6
        assert_eq!(rows[1].memristors, 138_720); // 1.39e5
        assert_eq!(rows[2].memristors, 67_320); // 6.73e4
        assert_eq!(rows[3].memristors, 2_040); // 2.04e3
        assert_eq!(rows[4].transistors, 61_200); // 6.12e4
        assert_eq!(rows[5].transistors, 14_280); // 1.43e4
        assert_eq!(a.total_memristors(), 1_248_480); // 1.25e6
        assert_eq!(a.total_transistors(), 75_480); // 7.55e4
    }

    #[test]
    fn overhead_fraction_is_about_twenty_percent() {
        let a = AreaModel::paper().unwrap();
        let f = a.memristor_overhead_fraction();
        assert!(f > 0.15 && f < 0.25, "got {f}");
    }

    #[test]
    fn scaling_with_k() {
        let a3 = AreaModel::new(1020, 15, 3).unwrap();
        let a8 = AreaModel::new(1020, 15, 8).unwrap();
        assert!(a8.total_memristors() > a3.total_memristors());
        assert_eq!(
            a8.rows()[2].memristors - a3.rows()[2].memristors,
            2 * 11 * 5 * 1020
        );
    }

    #[test]
    fn smaller_blocks_cost_more_check_bits() {
        let coarse = AreaModel::new(1020, 15, 3).unwrap();
        let fine = AreaModel::new(1020, 5, 3).unwrap();
        assert!(fine.rows()[1].memristors > coarse.rows()[1].memristors);
    }

    #[test]
    fn display_renders_full_table() {
        let s = AreaModel::paper().unwrap().to_string();
        assert!(s.contains("Check-Bits"));
        assert!(s.contains("Connection Unit"));
        assert!(s.contains("Total"));
    }

    #[test]
    fn invalid_geometry_propagates() {
        assert!(AreaModel::new(1000, 4, 3).is_err());
    }
}
