//! Barrel shifters emulating diagonal wiring between the MEM and the CMEM.
//!
//! Physical diagonal wires are infeasible in a crossbar (memristors have two
//! terminals), so the paper routes data between the MEM's wordlines/bitlines
//! and the CMEM's per-diagonal crossbars through barrel shifters (Fig. 5):
//! each m-bit block segment of a transferred line is rotated by the line's
//! block-local index, which lands every bit in the lane of its diagonal.
//!
//! This module is the functional model of that rerouting plus the Table II
//! transistor count (`4·n·m`).

use crate::geometry::BlockGeometry;

/// Which diagonal family a shifter bank serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Leading diagonals: `(row + col) mod m`.
    Leading,
    /// Counter diagonals: `(row − col) mod m`.
    Counter,
}

/// Whether the transferred line is a MEM row (wordline) or column
/// (bitline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// A wordline: the block-local *row* index is fixed.
    Row,
    /// A bitline: the block-local *column* index is fixed.
    Col,
}

/// Routes one MEM line (length n) to per-diagonal lanes.
///
/// `fixed_local` is the line's block-local index (`row % m` for a wordline,
/// `col % m` for a bitline). The result is indexed `[diagonal][block]`:
/// entry `[d][b]` is the data bit of block `b` along the line that lies on
/// diagonal `d` of `family`.
///
/// # Panics
///
/// Panics if `bits.len()` is not a multiple of `geom.m()` times the block
/// count along the line, or `fixed_local >= m`.
///
/// # Example
///
/// ```
/// use pimecc_core::geometry::BlockGeometry;
/// use pimecc_core::shifter::{align_line, Axis, Family};
///
/// # fn main() -> Result<(), pimecc_core::CoreError> {
/// let geom = BlockGeometry::new(9, 3)?;
/// // Row 1 of the crossbar (block-local row 1): bit at column 2 lies on
/// // leading diagonal (1 + 2) % 3 = 0 of block 0.
/// let mut row = vec![false; 9];
/// row[2] = true;
/// let lanes = align_line(&row, 1, &geom, Family::Leading, Axis::Row);
/// assert!(lanes[0][0]);
/// # Ok(())
/// # }
/// ```
pub fn align_line(
    bits: &[bool],
    fixed_local: usize,
    geom: &BlockGeometry,
    family: Family,
    axis: Axis,
) -> Vec<Vec<bool>> {
    let m = geom.m();
    assert!(
        fixed_local < m,
        "fixed local index {fixed_local} out of block range {m}"
    );
    assert_eq!(bits.len() % m, 0, "line length must be a multiple of m");
    let blocks = bits.len() / m;
    let mut out = vec![vec![false; blocks]; m];
    for (d, lane) in out.iter_mut().enumerate() {
        let offset = source_offset(d, fixed_local, m, family, axis);
        for (b, slot) in lane.iter_mut().enumerate() {
            *slot = bits[b * m + offset];
        }
    }
    out
}

/// The inverse routing: scatters per-diagonal lanes back into line order
/// (used when corrected data is driven back into the MEM).
///
/// # Panics
///
/// Panics if lane dimensions are inconsistent with `geom`.
pub fn scatter_line(
    lanes: &[Vec<bool>],
    fixed_local: usize,
    geom: &BlockGeometry,
    family: Family,
    axis: Axis,
) -> Vec<bool> {
    let m = geom.m();
    assert_eq!(lanes.len(), m, "need one lane per diagonal");
    let blocks = lanes.first().map_or(0, |l| l.len());
    assert!(lanes.iter().all(|l| l.len() == blocks), "ragged lanes");
    let mut out = vec![false; blocks * m];
    for (d, lane) in lanes.iter().enumerate() {
        let offset = source_offset(d, fixed_local, m, family, axis);
        for (b, &v) in lane.iter().enumerate() {
            out[b * m + offset] = v;
        }
    }
    out
}

/// The block-local varying index that lies on diagonal `d`, given the fixed
/// index of the transferred line. This is the rotation the barrel shifter
/// implements.
fn source_offset(d: usize, fixed: usize, m: usize, family: Family, axis: Axis) -> usize {
    match (family, axis) {
        // leading: (i + j) % m = d
        (Family::Leading, Axis::Row) | (Family::Leading, Axis::Col) => (d + m - fixed) % m,
        // counter: (i - j) % m = d, row fixes i -> j = i - d
        (Family::Counter, Axis::Row) => (fixed + m - d) % m,
        // counter: column fixes j -> i = d + j
        (Family::Counter, Axis::Col) => (d + fixed) % m,
    }
}

/// Transistor count of the shifter banks for an n×n crossbar with m×m
/// blocks (paper Table II: `4·n·m`).
pub fn transistor_count(n: usize, m: usize) -> u64 {
    4 * n as u64 * m as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every bit of every row/column must land in the lane of exactly the
    /// diagonal the geometry assigns it.
    #[test]
    fn row_alignment_agrees_with_geometry() {
        let geom = BlockGeometry::new(15, 5).unwrap();
        for r in 0..15 {
            for c in 0..15 {
                let mut row = vec![false; 15];
                row[c] = true;
                let (lead, counter) = geom.diagonals(r, c);
                let (_, bc) = geom.block_of(r, c);
                let ll = align_line(&row, r % 5, &geom, Family::Leading, Axis::Row);
                let cl = align_line(&row, r % 5, &geom, Family::Counter, Axis::Row);
                for d in 0..5 {
                    for b in 0..3 {
                        assert_eq!(
                            ll[d][b],
                            d == lead && b == bc,
                            "lead r={r} c={c} d={d} b={b}"
                        );
                        assert_eq!(cl[d][b], d == counter && b == bc, "ctr r={r} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn col_alignment_agrees_with_geometry() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        for c in 0..9 {
            for r in 0..9 {
                let mut col = vec![false; 9];
                col[r] = true;
                let (lead, counter) = geom.diagonals(r, c);
                let (br, _) = geom.block_of(r, c);
                let ll = align_line(&col, c % 3, &geom, Family::Leading, Axis::Col);
                let cl = align_line(&col, c % 3, &geom, Family::Counter, Axis::Col);
                for d in 0..3 {
                    for b in 0..3 {
                        assert_eq!(ll[d][b], d == lead && b == br, "lead r={r} c={c}");
                        assert_eq!(cl[d][b], d == counter && b == br, "ctr r={r} c={c}");
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_inverts_align() {
        let geom = BlockGeometry::new(15, 5).unwrap();
        let line: Vec<bool> = (0..15).map(|i| i % 3 == 0 || i % 7 == 1).collect();
        for fixed in 0..5 {
            for family in [Family::Leading, Family::Counter] {
                for axis in [Axis::Row, Axis::Col] {
                    let lanes = align_line(&line, fixed, &geom, family, axis);
                    let back = scatter_line(&lanes, fixed, &geom, family, axis);
                    assert_eq!(back, line, "{family:?} {axis:?} fixed={fixed}");
                }
            }
        }
    }

    #[test]
    fn alignment_is_a_permutation_per_block() {
        // Each lane entry [d][b] must draw from a distinct source column of
        // block b — the shifter only reroutes, never duplicates.
        let geom = BlockGeometry::new(9, 3).unwrap();
        for fixed in 0..3 {
            let mut sources = std::collections::HashSet::new();
            for d in 0..3 {
                let mut probe = vec![false; 9];
                // Find which position lane [d][0] reads by probing.
                for c in 0..3 {
                    probe.iter_mut().for_each(|b| *b = false);
                    probe[c] = true;
                    let lanes = align_line(&probe, fixed, &geom, Family::Leading, Axis::Row);
                    if lanes[d][0] {
                        sources.insert(c);
                    }
                }
            }
            assert_eq!(
                sources.len(),
                3,
                "fixed={fixed}: lanes must cover all columns"
            );
        }
    }

    #[test]
    fn transistor_count_matches_table2() {
        // Paper Table II: shifters = 4 x n x m = 61,200 for n=1020, m=15
        // (printed as 6.12e4).
        assert_eq!(transistor_count(1020, 15), 61_200);
    }

    #[test]
    #[should_panic(expected = "multiple of m")]
    fn misaligned_line_length_panics() {
        let geom = BlockGeometry::new(9, 3).unwrap();
        let _ = align_line(&[false; 10], 0, &geom, Family::Leading, Axis::Row);
    }
}
