//! The DAC'21 ECC-aware schedule extension of SIMPLER.
//!
//! Reproduces the paper's adapted tool (§V-B): after SIMPLER produces the
//! micro-op sequence, a greedy scheduler threads in the ECC work and adds
//! cycles whenever the MEM or the CMEM resources are unavailable:
//!
//! * **Input check** — before execution, the row of blocks holding the
//!   function's inputs is verified: `m` MAGIC NOT copy cycles (MEM busy)
//!   followed by an XOR3 reduction tree plus syndrome comparison inside the
//!   CMEM (processing crossbars busy, MEM free).
//! * **Critical operations** — every gate writing a primary output adds two
//!   MEM-busy transfer cycles (old value out before the gate, new value out
//!   after it) and reserves a processing crossbar which computes
//!   `check ⊕ old ⊕ new` for *both* the leading- and counter-diagonal
//!   check-bits (two 8-NOR XOR3 programs back to back) and then performs two
//!   write-backs serialized on the CMEM write port. If every processing
//!   crossbar is busy when a critical gate is due, the MEM stalls.
//!
//! The reported `PC (#)` of Table I is the smallest number of processing
//! crossbars for which the latency equals the unbounded-PC latency.

use crate::mapper::{Program, Step};

/// Parameters of the ECC schedule model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccConfig {
    /// Block dimension `m` (must be odd in the architecture; 15 in the
    /// paper).
    pub m: usize,
    /// Number of processing crossbars `k` available to the scheduler.
    pub num_pcs: usize,
    /// Cycles per XOR3 micro-program (8 MAGIC NORs in the paper).
    pub xor3_cycles: u64,
    /// Whether the pre-execution input ECC check is performed.
    pub check_inputs: bool,
    /// Processing-crossbar forwarding (paper footnote 3): when enabled
    /// (the paper's design), back-to-back updates to the same block
    /// forward in-flight check-bits between PCs; when disabled, a critical
    /// op stalls until the previous update of its block has written back.
    pub pc_forwarding: bool,
}

impl Default for EccConfig {
    /// The paper's operating point: `m = 15`, `k = 3`, 8-cycle XOR3,
    /// input checking on, PC forwarding on.
    fn default() -> Self {
        EccConfig {
            m: 15,
            num_pcs: 3,
            xor3_cycles: 8,
            check_inputs: true,
            pc_forwarding: true,
        }
    }
}

/// Outcome of scheduling one program with ECC maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccReport {
    /// SIMPLER latency without ECC (clock cycles).
    pub baseline_cycles: u64,
    /// Latency with the ECC mechanism (clock cycles).
    pub total_cycles: u64,
    /// Cycles the MEM spent stalled waiting for a processing crossbar.
    pub mem_stall_cycles: u64,
    /// MEM-busy cycles added by data transfers (input-check copies plus
    /// old/new transfers of critical operations).
    pub transfer_cycles: u64,
    /// Number of critical operations scheduled.
    pub critical_ops: usize,
    /// Cycles spent draining the CMEM pipeline after the last MEM op.
    pub drain_cycles: u64,
}

impl EccReport {
    /// Latency overhead versus baseline, in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_cycles == 0 {
            return 0.0;
        }
        (self.total_cycles as f64 / self.baseline_cycles as f64 - 1.0) * 100.0
    }
}

/// Latency of the CMEM-side input-check reduction for one row of blocks:
/// an XOR3 tree over `m` copied rows, a syndrome XOR against the stored
/// parity, and a checking-crossbar comparison. Processing crossbars execute
/// tree stages `k` ops at a time.
fn check_tree_latency(cfg: &EccConfig) -> u64 {
    let mut ops = cfg.m; // vectors to reduce
    let mut latency = 0u64;
    while ops > 1 {
        let stage_gates = ops.div_ceil(3); // XOR3 fan-in of 3
        latency += (stage_gates.div_ceil(cfg.num_pcs) as u64) * cfg.xor3_cycles;
        ops = stage_gates;
    }
    // Syndrome = computed parity XOR stored parity, then compare-to-zero in
    // the checking crossbar and controller sensing.
    latency + cfg.xor3_cycles + 2
}

/// Schedules `program` under the ECC mechanism and reports the latency
/// breakdown.
///
/// # Panics
///
/// Panics if `cfg.num_pcs == 0` or `cfg.m == 0`.
pub fn schedule_with_ecc(program: &Program, cfg: &EccConfig) -> EccReport {
    assert!(cfg.num_pcs > 0, "need at least one processing crossbar");
    assert!(cfg.m > 0, "block dimension must be positive");
    let baseline = program.cycles();

    let mut mem_t: u64 = 0;
    let mut transfer: u64 = 0;
    let mut stall: u64 = 0;
    // Per-PC next-free time.
    let mut pc_free = vec![0u64; cfg.num_pcs];
    // The CMEM write port serializes check-bit write-backs.
    let mut wb_port_free: u64 = 0;

    if cfg.check_inputs {
        // m copy cycles occupy the MEM; the reduction occupies only the
        // processing crossbars the tree's widest stage needs (the check is
        // read-only, so the write port stays free).
        mem_t += cfg.m as u64;
        transfer += cfg.m as u64;
        let check_done = mem_t + check_tree_latency(cfg);
        let reserved = cfg.num_pcs.min(cfg.m.div_ceil(3));
        for t in pc_free.iter_mut().take(reserved) {
            *t = check_done;
        }
    }

    // Without forwarding, per-block-column in-flight updates serialize:
    // block column of a write = output cell / m.
    let mut block_busy: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();

    for step in &program.steps {
        match step {
            Step::Init { .. }
            | Step::Gate {
                critical: false, ..
            } => mem_t += 1,
            Step::Gate {
                critical: true,
                output,
                ..
            } => {
                // Old-value transfer needs a free processing crossbar.
                let (pc, &free_at) = pc_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("num_pcs > 0");
                let mut ready = free_at;
                let block = output / cfg.m;
                if !cfg.pc_forwarding {
                    if let Some(&busy_until) = block_busy.get(&block) {
                        ready = ready.max(busy_until);
                    }
                }
                if ready > mem_t {
                    stall += ready - mem_t;
                    mem_t = ready;
                }
                // MEM: old copy, the gate itself, new copy.
                mem_t += 3;
                transfer += 2;
                // PC: two XOR3 programs (leading + counter diagonals) start
                // once the new value arrives, then two serialized
                // write-backs on the CMEM port.
                let compute_done = mem_t + 2 * cfg.xor3_cycles;
                let wb1 = compute_done.max(wb_port_free) + 1;
                let wb2 = wb1 + 1;
                wb_port_free = wb2;
                pc_free[pc] = wb2;
                if !cfg.pc_forwarding {
                    block_busy.insert(block, wb2);
                }
            }
        }
    }

    let pipeline_done = pc_free.iter().copied().max().unwrap_or(0).max(mem_t);
    EccReport {
        baseline_cycles: baseline,
        total_cycles: pipeline_done,
        mem_stall_cycles: stall,
        transfer_cycles: transfer,
        critical_ops: program.critical_count(),
        drain_cycles: pipeline_done - mem_t,
    }
}

/// Finds the smallest number of processing crossbars whose latency matches
/// the effectively-unbounded configuration (`upper_bound` PCs), mirroring
/// the paper's "PC (#)" column.
///
/// # Panics
///
/// Panics if `upper_bound == 0`.
pub fn min_processing_crossbars(program: &Program, base: &EccConfig, upper_bound: usize) -> usize {
    assert!(upper_bound > 0, "upper bound must be positive");
    let unbounded = schedule_with_ecc(
        program,
        &EccConfig {
            num_pcs: upper_bound,
            ..*base
        },
    )
    .total_cycles;
    for k in 1..=upper_bound {
        let t = schedule_with_ecc(
            program,
            &EccConfig {
                num_pcs: k,
                ..*base
            },
        )
        .total_cycles;
        if t == unbounded {
            return k;
        }
    }
    upper_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapperConfig};
    use pimecc_netlist::NetlistBuilder;

    /// A chain of `len` NORs ending in one output (one critical op).
    fn chain_program(len: usize) -> Program {
        let mut b = NetlistBuilder::new();
        let mut x = b.input();
        let y = b.input();
        for _ in 0..len {
            x = b.nor(x, y);
        }
        b.output(x);
        map(&b.finish().to_nor(), &MapperConfig { row_size: 16 }).unwrap()
    }

    /// A one-level circuit where every gate is an output (all critical).
    fn dense_program(outputs: usize) -> Program {
        let mut b = NetlistBuilder::new();
        let ins: Vec<_> = (0..8).map(|_| b.input()).collect();
        for i in 0..outputs {
            let g = b.nor(ins[i % 8], ins[(i / 8 + 1) % 8]);
            b.output(g);
        }
        map(&b.finish().to_nor(), &MapperConfig { row_size: 1020 }).unwrap()
    }

    #[test]
    fn no_criticals_and_no_check_means_no_overhead() {
        // A program with zero critical ops (output is a direct input) would
        // be degenerate; instead verify the check-off path on a chain: only
        // the single final critical op adds cycles.
        let p = chain_program(50);
        let cfg = EccConfig {
            check_inputs: false,
            ..EccConfig::default()
        };
        let r = schedule_with_ecc(&p, &cfg);
        assert_eq!(r.critical_ops, 1);
        // 2 transfer cycles + pipeline drain for the single critical op.
        assert_eq!(r.transfer_cycles, 2);
        assert_eq!(r.mem_stall_cycles, 0);
        assert!(r.total_cycles >= r.baseline_cycles + 2);
    }

    #[test]
    fn input_check_adds_m_mem_cycles() {
        let p = chain_program(50);
        let off = schedule_with_ecc(
            &p,
            &EccConfig {
                check_inputs: false,
                ..Default::default()
            },
        );
        let on = schedule_with_ecc(&p, &EccConfig::default());
        // The chain is long enough that the check pipeline fully overlaps:
        // exactly m extra MEM cycles appear.
        assert_eq!(on.total_cycles - off.total_cycles, 15);
    }

    #[test]
    fn dense_outputs_stall_with_few_pcs() {
        let p = dense_program(64);
        let one = schedule_with_ecc(
            &p,
            &EccConfig {
                num_pcs: 1,
                ..Default::default()
            },
        );
        let many = schedule_with_ecc(
            &p,
            &EccConfig {
                num_pcs: 16,
                ..Default::default()
            },
        );
        assert!(one.mem_stall_cycles > 0, "1 PC must stall on 64 criticals");
        assert!(one.total_cycles > many.total_cycles);
        assert_eq!(many.mem_stall_cycles, 0, "16 PCs never stall here");
    }

    #[test]
    fn latency_is_monotone_in_pc_count() {
        let p = dense_program(64);
        let mut last = u64::MAX;
        for k in 1..=10 {
            let t = schedule_with_ecc(
                &p,
                &EccConfig {
                    num_pcs: k,
                    ..Default::default()
                },
            )
            .total_cycles;
            assert!(t <= last, "k={k}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn min_pcs_is_stable_and_small_for_sparse_outputs() {
        let p = chain_program(100);
        let k = min_processing_crossbars(&p, &EccConfig::default(), 16);
        assert_eq!(k, 1, "a single critical op needs one PC");
    }

    #[test]
    fn min_pcs_grows_for_dense_outputs() {
        let p = dense_program(128);
        let k = min_processing_crossbars(&p, &EccConfig::default(), 16);
        assert!(k > 1, "back-to-back criticals need pipelining, got {k}");
        assert!(k <= 16);
    }

    #[test]
    fn disabling_forwarding_serializes_same_block_updates() {
        // All 64 outputs of the dense program land in the low cells of the
        // row — the same handful of block columns — so without forwarding
        // every update waits for the previous write-back.
        let p = dense_program(64);
        let fwd = schedule_with_ecc(
            &p,
            &EccConfig {
                num_pcs: 8,
                ..Default::default()
            },
        );
        let no_fwd = schedule_with_ecc(
            &p,
            &EccConfig {
                num_pcs: 8,
                pc_forwarding: false,
                ..Default::default()
            },
        );
        assert!(
            no_fwd.total_cycles > fwd.total_cycles,
            "serialization must cost cycles: {} vs {}",
            no_fwd.total_cycles,
            fwd.total_cycles
        );
        assert!(no_fwd.mem_stall_cycles > fwd.mem_stall_cycles);
    }

    #[test]
    fn forwarding_is_a_no_op_for_sparse_outputs() {
        let p = chain_program(100);
        let fwd = schedule_with_ecc(&p, &EccConfig::default());
        let no_fwd = schedule_with_ecc(
            &p,
            &EccConfig {
                pc_forwarding: false,
                ..Default::default()
            },
        );
        assert_eq!(
            fwd.total_cycles, no_fwd.total_cycles,
            "one critical op cannot conflict"
        );
    }

    #[test]
    fn overhead_pct_math() {
        let r = EccReport {
            baseline_cycles: 100,
            total_cycles: 126,
            mem_stall_cycles: 0,
            transfer_cycles: 0,
            critical_ops: 0,
            drain_cycles: 0,
        };
        assert!((r.overhead_pct() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn check_tree_latency_shrinks_with_more_pcs() {
        let slow = check_tree_latency(&EccConfig {
            num_pcs: 1,
            ..Default::default()
        });
        let fast = check_tree_latency(&EccConfig {
            num_pcs: 8,
            ..Default::default()
        });
        assert!(slow > fast);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_pcs_panics() {
        let p = chain_program(5);
        let _ = schedule_with_ecc(
            &p,
            &EccConfig {
                num_pcs: 0,
                ..Default::default()
            },
        );
    }
}
