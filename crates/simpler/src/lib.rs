//! Reimplementation of the SIMPLER MAGIC single-row mapper (Ben-Hur et al.,
//! TCAD 2020) plus the DAC'21 paper's ECC-aware scheduling extension.
//!
//! SIMPLER maps an arbitrary NOR-only netlist onto a *single row* of a
//! memristive crossbar: every gate output is allocated to a cell of the
//! row, cells are recycled once all the fanouts of their value have
//! executed (after a re-initialization cycle), and the execution order is
//! chosen with a Sethi–Ullman-style *cell usage* heuristic so the live set
//! stays small. Because MAGIC executes the same row-gate across all rows in
//! parallel, a mapped program is simultaneously a SIMD program over the
//! whole crossbar.
//!
//! The ECC extension reproduces the adapted scheduler of the DAC'21 paper:
//! before a function executes, the blocks holding its inputs are ECC-checked
//! (m MAGIC copy cycles plus an XOR3 tree in the check memory); every
//! *critical* operation — a gate whose result is a primary output, i.e.
//! data that must be covered by check-bits — additionally transfers its old
//! and new values through the barrel shifters into a processing crossbar,
//! which recomputes the leading- and counter-diagonal check-bits as
//! `check ⊕ old ⊕ new` (two 8-NOR XOR3s) and writes them back.
//!
//! # Example
//!
//! ```
//! use pimecc_netlist::generators::Benchmark;
//! use pimecc_simpler::{map_auto, EccConfig, schedule_with_ecc};
//!
//! let nor = Benchmark::Dec.build().netlist.to_nor();
//! let (program, row) = map_auto(&nor, 1020).expect("mappable");
//! assert_eq!(row, 1020);
//! let report = schedule_with_ecc(&program, &EccConfig::default());
//! assert!(report.total_cycles > report.baseline_cycles);
//! ```

pub mod cu;
pub mod ecc;
pub mod listing;
pub mod mapper;

pub use cu::{cell_usage, execution_order};
pub use ecc::{min_processing_crossbars, schedule_with_ecc, EccConfig, EccReport};
pub use listing::{parse_listing, write_listing, ParseListingError};
pub use mapper::{map, map_auto, map_dense, MapError, MapperConfig, Program, Step};
