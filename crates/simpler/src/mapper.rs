//! The SIMPLER single-row mapper: cell allocation, recycling and batched
//! re-initialization.

use crate::cu::{cell_usage, execution_order};
use pimecc_netlist::{NorNetlist, NorSource};
use pimecc_xbar::{Crossbar, LineSet, XbarError};
use std::collections::VecDeque;
use std::fmt;

/// Mapper parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperConfig {
    /// Number of cells in the crossbar row the function is mapped onto.
    pub row_size: usize,
}

impl Default for MapperConfig {
    /// The paper's crossbar width, `n = 1020`.
    fn default() -> Self {
        MapperConfig { row_size: 1020 }
    }
}

/// Mapping failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The live set exceeded the row at some point: the function does not
    /// fit a row of this size under the chosen order.
    RowOverflow {
        /// Configured row size.
        row_size: usize,
        /// Cells permanently pinned (inputs + outputs produced so far) when
        /// the overflow happened.
        pinned: usize,
    },
    /// More primary inputs than row cells.
    TooManyInputs {
        /// Number of function inputs.
        inputs: usize,
        /// Configured row size.
        row_size: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::RowOverflow { row_size, pinned } => write!(
                f,
                "function does not fit a {row_size}-cell row ({pinned} cells pinned at overflow)"
            ),
            MapError::TooManyInputs { inputs, row_size } => {
                write!(f, "{inputs} inputs exceed the {row_size}-cell row")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// One single-cycle micro-operation of a mapped program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Parallel re-initialization (SET to LRS) of the listed cells.
    Init {
        /// Cells initialized this cycle.
        cells: Vec<usize>,
    },
    /// One MAGIC NOR gate executed in the row.
    Gate {
        /// Index of the NOR gate in the source netlist.
        gate: usize,
        /// Cells holding the gate's operands.
        inputs: Vec<usize>,
        /// Cell receiving the result.
        output: usize,
        /// True if the result is a primary output — the ECC-critical case.
        critical: bool,
    },
}

/// A SIMPLER-mapped program: a straight-line sequence of single-cycle
/// micro-operations over one crossbar row.
///
/// # Example
///
/// ```
/// use pimecc_netlist::NetlistBuilder;
/// use pimecc_simpler::{map, MapperConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let g = b.nor(x, y);
/// b.output(g);
/// let program = map(&b.finish().to_nor(), &MapperConfig { row_size: 8 })?;
/// assert_eq!(program.execute(&[true, false])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    /// Row width the program was mapped for.
    pub row_size: usize,
    /// Number of primary inputs (stored in cells `0..num_inputs`).
    pub num_inputs: usize,
    /// The micro-operation sequence; each step costs one clock cycle.
    pub steps: Vec<Step>,
    /// Cell of each primary output, in netlist output order.
    pub output_cells: Vec<usize>,
    /// Peak number of simultaneously live cells (inputs + intermediates +
    /// outputs) observed during allocation.
    pub peak_live: usize,
}

impl Program {
    /// Total latency in clock cycles (= number of steps).
    pub fn cycles(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Number of NOR-gate cycles.
    pub fn gate_cycles(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Gate { .. }))
            .count() as u64
    }

    /// Number of batched initialization cycles.
    pub fn init_cycles(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Init { .. }))
            .count() as u64
    }

    /// Number of ECC-critical gate operations (writes of primary outputs).
    pub fn critical_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Gate { critical: true, .. }))
            .count()
    }

    /// Highest cell index the program ever touches (inputs, gate operands,
    /// gate outputs, initializations and primary outputs), plus one — the
    /// width of the row slice a device must reserve per request. Always
    /// `<= row_size`, and often much smaller for narrow functions mapped
    /// into wide rows.
    pub fn footprint(&self) -> usize {
        let mut hi = self.num_inputs.saturating_sub(1);
        for step in &self.steps {
            match step {
                Step::Init { cells } => {
                    hi = cells.iter().copied().fold(hi, usize::max);
                }
                Step::Gate { inputs, output, .. } => {
                    hi = inputs.iter().copied().fold(hi.max(*output), usize::max);
                }
            }
        }
        hi = self.output_cells.iter().copied().fold(hi, usize::max);
        if self.num_inputs == 0 && self.steps.is_empty() && self.output_cells.is_empty() {
            0
        } else {
            hi + 1
        }
    }

    /// Drops initializations of cells that are never driven afterwards.
    ///
    /// SIMPLER's batched re-initialization arms *every* reclaimable cell in
    /// one cycle — correct and cheap in time, but it makes the program
    /// *touch* the whole row, which pins [`Program::footprint`] at
    /// `row_size` and defeats partial-row co-packing. Arming a cell that no
    /// later gate drives cannot affect any output (armed cells are only
    /// ever read after being driven), so those cells can be dropped from
    /// each `Init` without changing semantics or MAGIC legality. An `Init`
    /// left with no cells is removed entirely, so the step count can only
    /// shrink.
    ///
    /// [`map`] applies this automatically; it is public for programs built
    /// by other frontends (e.g. [`parse_listing`](crate::parse_listing)),
    /// where it is safe whenever gate inputs are only ever read after being
    /// written — true for any program a mapper emits.
    pub fn prune_inits(&mut self) {
        let mut driven_later = vec![false; self.row_size];
        for step in self.steps.iter_mut().rev() {
            match step {
                Step::Gate { output, .. } => driven_later[*output] = true,
                Step::Init { cells } => cells.retain(|&c| driven_later[c]),
            }
        }
        self.steps
            .retain(|s| !matches!(s, Step::Init { cells } if cells.is_empty()));
    }

    /// Structural fingerprint of the mapped program (FNV-1a over the step
    /// stream and interface). Two programs with equal fingerprints execute
    /// identically, so devices use this as their compiled-program cache
    /// key.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        mix(self.row_size as u64);
        mix(self.num_inputs as u64);
        for step in &self.steps {
            match step {
                Step::Init { cells } => {
                    mix(1);
                    mix(cells.len() as u64);
                    cells.iter().for_each(|&c| mix(c as u64));
                }
                Step::Gate {
                    gate,
                    inputs,
                    output,
                    critical,
                } => {
                    mix(2);
                    mix(*gate as u64);
                    mix(inputs.len() as u64);
                    inputs.iter().for_each(|&c| mix(c as u64));
                    mix(*output as u64);
                    mix(u64::from(*critical));
                }
            }
        }
        mix(self.output_cells.len() as u64);
        self.output_cells.iter().for_each(|&c| mix(c as u64));
        h
    }

    /// Executes the program on a strict-mode MAGIC crossbar row and returns
    /// the primary outputs. All non-input cells start with pseudo-random
    /// garbage, so missing initializations are caught by the simulator.
    ///
    /// # Errors
    ///
    /// Propagates any MAGIC legality violation ([`XbarError`]) — a correct
    /// mapping never triggers one.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs`.
    pub fn execute(&self, inputs: &[bool]) -> Result<Vec<bool>, XbarError> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut xb = Crossbar::new(1, self.row_size);
        // Garbage-fill: deterministic pattern, not all-zero.
        for c in 0..self.row_size {
            xb.write_bit(0, c, c % 3 == 1);
        }
        for (i, &v) in inputs.iter().enumerate() {
            xb.write_bit(0, i, v);
        }
        for step in &self.steps {
            match step {
                Step::Init { cells } => xb.exec_init_rows(cells, &LineSet::One(0))?,
                Step::Gate { inputs, output, .. } => {
                    xb.exec_nor_rows(inputs, *output, &LineSet::One(0))?
                }
            }
        }
        Ok(self.output_cells.iter().map(|&c| xb.bit(0, c)).collect())
    }
}

/// Maps a NOR netlist onto a single crossbar row.
///
/// # Errors
///
/// [`MapError::TooManyInputs`] if the inputs alone exceed the row;
/// [`MapError::RowOverflow`] if the live set cannot fit at some point.
pub fn map(nor: &NorNetlist, cfg: &MapperConfig) -> Result<Program, MapError> {
    let row = cfg.row_size;
    let n_in = nor.num_inputs();
    if n_in >= row {
        return Err(MapError::TooManyInputs {
            inputs: n_in,
            row_size: row,
        });
    }
    let cu = cell_usage(nor);
    let order = execution_order(nor, &cu);
    let is_output = nor.output_gate_set();
    let mut fanout = nor.fanouts();

    // Cell pools. Inputs pin cells 0..n_in forever.
    let mut clean: VecDeque<usize> = VecDeque::new();
    let mut dirty: VecDeque<usize> = (n_in..row).collect();
    let mut cell_of = vec![usize::MAX; nor.num_gates()];
    let mut live = n_in; // cells currently holding meaningful values
    let mut peak_live = n_in;
    let mut steps = Vec::with_capacity(order.len());

    for &g in &order {
        // Acquire an armed (initialized) cell for the output.
        let out_cell = match clean.pop_front() {
            Some(c) => c,
            None => {
                if dirty.is_empty() {
                    return Err(MapError::RowOverflow {
                        row_size: row,
                        pinned: live,
                    });
                }
                // One batched init cycle arms every reclaimable cell.
                let cells: Vec<usize> = dirty.drain(..).collect();
                steps.push(Step::Init {
                    cells: cells.clone(),
                });
                clean.extend(cells);
                clean.pop_front().expect("just refilled")
            }
        };
        cell_of[g] = out_cell;
        live += 1;
        peak_live = peak_live.max(live);

        let input_cells: Vec<usize> = nor.gates()[g]
            .inputs
            .iter()
            .map(|s| match s {
                NorSource::Input(i) => *i,
                NorSource::Gate(j) => cell_of[*j],
            })
            .collect();
        debug_assert!(input_cells.iter().all(|&c| c != usize::MAX));
        steps.push(Step::Gate {
            gate: g,
            inputs: input_cells,
            output: out_cell,
            critical: is_output[g],
        });

        // Release operand cells whose last consumer just ran (outputs are
        // pinned by their extra fanout entry from the output list).
        for s in &nor.gates()[g].inputs {
            if let NorSource::Gate(j) = s {
                fanout[*j] -= 1;
                if fanout[*j] == 0 {
                    dirty.push_back(cell_of[*j]);
                    live -= 1;
                }
            }
        }
    }

    let output_cells = nor
        .outputs()
        .iter()
        .map(|s| match s {
            NorSource::Input(i) => *i,
            NorSource::Gate(j) => cell_of[*j],
        })
        .collect();

    let mut program = Program {
        row_size: row,
        num_inputs: n_in,
        steps,
        output_cells,
        peak_live,
    };
    // Keep the footprint honest: without this, the first batched init arms
    // the whole row and every program "touches" `row_size` cells.
    program.prune_inits();
    Ok(program)
}

/// Maps with automatic row widening: starts at `base_row` and doubles until
/// the function fits (capped at 16 doublings).
///
/// Returns the program and the row size that succeeded.
///
/// # Errors
///
/// Returns the final [`MapError`] if even the largest attempted row fails.
pub fn map_auto(nor: &NorNetlist, base_row: usize) -> Result<(Program, usize), MapError> {
    let mut row = base_row;
    let mut last_err = None;
    for _ in 0..16 {
        match map(nor, &MapperConfig { row_size: row }) {
            Ok(p) => return Ok((p, row)),
            Err(e) => {
                last_err = Some(e);
                row *= 2;
            }
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Maps a NOR netlist for *partial-row co-packing*: instead of spreading
/// over the full `cfg.row_size` cells, the function is re-mapped into the
/// narrowest slot that does not blow up its cycle count, so that several
/// requests fit one physical row side by side (`footprint() * k <=
/// row_size`).
///
/// The sweep starts just above the full-width mapping's live-set peak and
/// widens geometrically up to `cfg.row_size`, keeping the candidate that
/// maximizes requests-per-row and, among equals, minimizes cycles. Narrow
/// slots force cell recycling (more `Init` cycles); candidates costing more
/// than 3/2 of the full-width latency are rejected, so the result is never
/// more than 50% slower per pass and usually within a few cycles. The
/// full-width program is returned unchanged when nothing packs denser.
///
/// Deterministic: a pure function of the netlist and `cfg`.
///
/// # Errors
///
/// As [`map`], for the full-width mapping.
pub fn map_dense(nor: &NorNetlist, cfg: &MapperConfig) -> Result<Program, MapError> {
    let full = map(nor, cfg)?;
    let row = cfg.row_size;
    let density = |p: &Program| row / p.footprint().max(1);
    let budget = full.cycles() + full.cycles() / 2;
    let mut best = full.clone();
    let mut w = (full.peak_live + 2).max(nor.num_inputs() + 2);
    while w < row {
        if let Ok(p) = map(nor, &MapperConfig { row_size: w }) {
            if p.cycles() <= budget
                && (density(&p) > density(&best)
                    || (density(&p) == density(&best) && p.cycles() < best.cycles()))
            {
                best = p;
            }
        }
        // Geometric sweep: ~log(row / peak_live) mapper runs.
        w = (w + w / 4).max(w + 1);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::generators::Benchmark;
    use pimecc_netlist::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_netlist() -> NorNetlist {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let g1 = b.xor(x, y);
        let g2 = b.and(g1, z);
        let g3 = b.or(g1, g2);
        b.output(g3);
        b.output(g2);
        b.finish().to_nor()
    }

    #[test]
    fn maps_and_executes_small_netlist_exhaustively() {
        let nor = small_netlist();
        let p = map(&nor, &MapperConfig { row_size: 16 }).unwrap();
        for v in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(p.execute(&inputs).unwrap(), nor.eval(&inputs), "v={v}");
        }
    }

    #[test]
    fn cycles_are_gates_plus_inits() {
        let nor = small_netlist();
        let p = map(&nor, &MapperConfig { row_size: 16 }).unwrap();
        assert_eq!(p.cycles(), p.gate_cycles() + p.init_cycles());
        assert_eq!(p.gate_cycles() as usize, nor.num_gates());
    }

    #[test]
    fn critical_count_equals_output_gates() {
        let nor = small_netlist();
        let p = map(&nor, &MapperConfig { row_size: 16 }).unwrap();
        assert_eq!(p.critical_count(), 2);
    }

    #[test]
    fn tight_row_forces_reuse_but_stays_correct() {
        // A chain with tiny live set mapped into a minimal row: cell
        // recycling plus init batching must kick in.
        let mut b = NetlistBuilder::new();
        let mut x = b.input();
        let y = b.input();
        for _ in 0..100 {
            x = b.nor(x, y);
        }
        b.output(x);
        let nor = b.finish().to_nor();
        let p = map(&nor, &MapperConfig { row_size: 6 }).unwrap();
        assert!(p.init_cycles() > 0, "reuse requires init cycles");
        for (xv, yv) in [(false, false), (true, false), (false, true), (true, true)] {
            assert_eq!(p.execute(&[xv, yv]).unwrap(), nor.eval(&[xv, yv]));
        }
    }

    #[test]
    fn overflow_reported_for_impossible_row() {
        let nor = Benchmark::Adder.build().netlist.to_nor();
        // 256 inputs cannot fit in a 100-cell row at all.
        assert!(matches!(
            map(&nor, &MapperConfig { row_size: 100 }),
            Err(MapError::TooManyInputs { .. })
        ));
        // 258 cells fit the inputs but not the computation.
        assert!(matches!(
            map(&nor, &MapperConfig { row_size: 258 }),
            Err(MapError::RowOverflow { .. })
        ));
    }

    #[test]
    fn map_auto_widens_until_fit() {
        let nor = Benchmark::Adder.build().netlist.to_nor();
        let (p, row) = map_auto(&nor, 258).unwrap();
        assert!(row > 258);
        let mut rng = StdRng::seed_from_u64(1);
        let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
        assert_eq!(p.execute(&inputs).unwrap(), nor.eval(&inputs));
    }

    #[test]
    fn every_benchmark_maps_and_validates_at_1020_or_wider() {
        let mut rng = StdRng::seed_from_u64(2);
        for bench in Benchmark::ALL {
            let nor = bench.build().netlist.to_nor();
            let (p, row) = map_auto(&nor, 1020).unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert!(row <= 8160, "{bench} needed row {row}");
            assert!(p.peak_live <= row, "{bench}");
            for _ in 0..3 {
                let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
                assert_eq!(
                    p.execute(&inputs).unwrap(),
                    nor.eval(&inputs),
                    "{bench} mismatch"
                );
            }
        }
    }

    #[test]
    fn peak_live_is_bounded_by_heuristic_quality() {
        // The CU-guided order must keep a 64-leaf balanced tree's live set
        // logarithmic, not linear.
        let mut b = NetlistBuilder::new();
        let leaves: Vec<_> = (0..64).map(|_| b.input()).collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|p| b.nor(p[0], p[1])).collect();
        }
        b.output(layer[0]);
        let nor = b.finish().to_nor();
        let p = map(&nor, &MapperConfig { row_size: 128 }).unwrap();
        assert!(
            p.peak_live <= 64 + 10,
            "tree live set should be ~log: {}",
            p.peak_live
        );
    }

    #[test]
    fn footprint_bounds_the_touched_cells() {
        let nor = small_netlist();
        let p = map(&nor, &MapperConfig { row_size: 64 }).unwrap();
        let fp = p.footprint();
        assert!(fp <= 64);
        assert!(fp >= nor.num_inputs(), "inputs live inside the footprint");
        for step in &p.steps {
            match step {
                Step::Init { cells } => assert!(cells.iter().all(|&c| c < fp)),
                Step::Gate { inputs, output, .. } => {
                    assert!(inputs.iter().all(|&c| c < fp) && *output < fp)
                }
            }
        }
        assert!(p.output_cells.iter().all(|&c| c < fp));
    }

    #[test]
    fn pruned_inits_keep_only_future_gate_outputs() {
        let nor = small_netlist();
        let p = map(&nor, &MapperConfig { row_size: 64 }).unwrap();
        // Every init cell must be driven by a later gate — the batched
        // drain-all init of the raw mapper is trimmed to the cells the
        // program really uses, so the footprint tracks the live set
        // instead of the row width.
        for (at, step) in p.steps.iter().enumerate() {
            if let Step::Init { cells } = step {
                assert!(!cells.is_empty(), "empty inits are dropped");
                for &c in cells {
                    let driven = p.steps[at + 1..]
                        .iter()
                        .any(|s| matches!(s, Step::Gate { output, .. } if *output == c));
                    assert!(driven, "cell {c} armed but never driven");
                }
            }
        }
        assert!(
            p.footprint() < 16,
            "3 inputs + 3 gates must not touch {} of 64 cells",
            p.footprint()
        );
        // Semantics are unchanged.
        for v in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(p.execute(&inputs).unwrap(), nor.eval(&inputs), "v={v}");
        }
    }

    #[test]
    fn map_dense_packs_several_requests_per_row() {
        let nor = Benchmark::Int2float.build().netlist.to_nor();
        let cfg = MapperConfig { row_size: 255 };
        let full = map(&nor, &cfg).unwrap();
        let dense = map_dense(&nor, &cfg).unwrap();
        assert!(
            255 / dense.footprint() >= 2 * (255 / full.footprint()).max(1),
            "dense mapping must at least double requests-per-row: {} vs {}",
            dense.footprint(),
            full.footprint()
        );
        assert!(
            dense.cycles() <= full.cycles() + full.cycles() / 2,
            "narrowing must respect the cycle budget: {} vs {}",
            dense.cycles(),
            full.cycles()
        );
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..4 {
            let inputs: Vec<bool> = (0..nor.num_inputs()).map(|_| rng.gen()).collect();
            assert_eq!(dense.execute(&inputs).unwrap(), nor.eval(&inputs));
        }
    }

    #[test]
    fn fingerprint_separates_programs_and_is_stable() {
        let nor = small_netlist();
        let a = map(&nor, &MapperConfig { row_size: 16 }).unwrap();
        let b = map(&nor, &MapperConfig { row_size: 16 }).unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same mapping, same fingerprint"
        );
        let wider = map(&nor, &MapperConfig { row_size: 30 }).unwrap();
        assert_ne!(
            a.fingerprint(),
            wider.fingerprint(),
            "row size is part of the identity"
        );
    }

    #[test]
    fn display_of_map_errors() {
        let e1 = MapError::RowOverflow {
            row_size: 10,
            pinned: 9,
        }
        .to_string();
        assert!(e1.contains("10-cell"));
        let e2 = MapError::TooManyInputs {
            inputs: 20,
            row_size: 10,
        }
        .to_string();
        assert!(e2.contains("20 inputs"));
    }
}
