//! Cell-usage heuristic and execution ordering (the "SIMPLER sort").
//!
//! SIMPLER orders gate execution so that the number of simultaneously live
//! intermediate values stays small, generalizing Sethi–Ullman register
//! labelling to NOR DAGs: a gate's *cell usage* (CU) estimates how many row
//! cells its evaluation needs at peak, and a depth-first traversal that
//! visits heavier children first realizes (approximately) that peak.

use pimecc_netlist::{NorNetlist, NorSource};

/// Computes the cell-usage label of every gate.
///
/// For a gate with gate-operands `g_1..g_k` (primary inputs occupy dedicated
/// cells and are excluded) whose labels sorted descending are `l_1 ≥ ... ≥
/// l_k`, the label is `max(max_i(l_i + i - 1), k + 1)` — the classic
/// Sethi–Ullman recurrence plus one cell for the gate's own output, with a
/// floor of 1 for gates fed only by primary inputs.
pub fn cell_usage(nor: &NorNetlist) -> Vec<u64> {
    let mut cu = vec![0u64; nor.num_gates()];
    for (i, gate) in nor.gates().iter().enumerate() {
        let mut child_labels: Vec<u64> = gate
            .inputs
            .iter()
            .filter_map(|s| match s {
                NorSource::Gate(j) => Some(cu[*j]),
                NorSource::Input(_) => None,
            })
            .collect();
        child_labels.sort_unstable_by(|a, b| b.cmp(a));
        let k = child_labels.len() as u64;
        let seq = child_labels
            .iter()
            .enumerate()
            .map(|(idx, &l)| l + idx as u64)
            .max()
            .unwrap_or(0);
        cu[i] = seq.max(k + 1).max(1);
    }
    cu
}

/// Produces a topological execution order (gate indices) by iterative
/// post-order DFS from the outputs, visiting children in descending CU
/// order, and starting from the heaviest output cone first.
pub fn execution_order(nor: &NorNetlist, cu: &[u64]) -> Vec<usize> {
    let mut order = Vec::with_capacity(nor.num_gates());
    let mut visited = vec![false; nor.num_gates()];

    let mut roots: Vec<usize> = nor
        .outputs()
        .iter()
        .filter_map(|s| match s {
            NorSource::Gate(i) => Some(*i),
            NorSource::Input(_) => None,
        })
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.sort_by(|&a, &b| cu[b].cmp(&cu[a]).then(a.cmp(&b)));

    // Iterative DFS with an explicit (node, expanded) stack: deep chains
    // (CORDIC, ripple carries) overflow the call stack otherwise.
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in roots {
        if visited[root] {
            continue;
        }
        stack.push((root, false));
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if visited[node] {
                continue;
            }
            visited[node] = true;
            stack.push((node, true));
            let mut children: Vec<usize> = nor.gates()[node]
                .inputs
                .iter()
                .filter_map(|s| match s {
                    NorSource::Gate(j) if !visited[*j] => Some(*j),
                    _ => None,
                })
                .collect();
            children.sort_unstable();
            children.dedup();
            // Push lighter children first so heavier ones pop (run) first.
            children.sort_by(|&a, &b| cu[a].cmp(&cu[b]).then(b.cmp(&a)));
            for c in children {
                stack.push((c, false));
            }
        }
    }
    debug_assert_eq!(order.len(), nor.num_gates().min(order.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimecc_netlist::NetlistBuilder;

    fn chain(len: usize) -> NorNetlist {
        let mut b = NetlistBuilder::new();
        let mut x = b.input();
        let y = b.input();
        for _ in 0..len {
            x = b.nor(x, y);
        }
        b.output(x);
        b.finish().to_nor()
    }

    #[test]
    fn chain_has_constant_cell_usage() {
        let nor = chain(10);
        let cu = cell_usage(&nor);
        // A NOR chain re-uses one live value: CU stays small (== 2: the
        // child's value plus the new output).
        assert!(cu.iter().all(|&c| c <= 2), "{cu:?}");
    }

    #[test]
    fn balanced_tree_usage_grows_logarithmically() {
        // Balanced 16-leaf NOR tree: CU ~ depth + 1.
        let mut b = NetlistBuilder::new();
        let leaves: Vec<_> = (0..16).map(|_| b.input()).collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|p| b.nor(p[0], p[1])).collect();
        }
        b.output(layer[0]);
        let nor = b.finish().to_nor();
        let cu = cell_usage(&nor);
        let root_cu = *cu.last().unwrap();
        assert!((4..=6).contains(&root_cu), "root CU {root_cu}");
    }

    #[test]
    fn order_is_topological_and_complete() {
        let nor = {
            let mut b = NetlistBuilder::new();
            let x = b.input();
            let y = b.input();
            let g1 = b.xor(x, y);
            let g2 = b.and(g1, x);
            let g3 = b.or(g1, g2);
            b.output(g3);
            b.output(g2);
            b.finish().to_nor()
        };
        let cu = cell_usage(&nor);
        let order = execution_order(&nor, &cu);
        assert_eq!(order.len(), nor.num_gates());
        let mut pos = vec![usize::MAX; nor.num_gates()];
        for (p, &g) in order.iter().enumerate() {
            pos[g] = p;
        }
        for (i, gate) in nor.gates().iter().enumerate() {
            for s in &gate.inputs {
                if let pimecc_netlist::NorSource::Gate(j) = s {
                    assert!(pos[*j] < pos[i], "gate {i} before operand {j}");
                }
            }
        }
    }

    #[test]
    fn order_handles_deep_chains_without_overflow() {
        let nor = chain(50_000);
        let cu = cell_usage(&nor);
        let order = execution_order(&nor, &cu);
        assert_eq!(order.len(), 50_000);
    }

    #[test]
    fn dead_gates_do_not_appear_in_order() {
        // prune_dead already removes unreachable gates, so order covers all.
        let nor = chain(5);
        let cu = cell_usage(&nor);
        assert_eq!(execution_order(&nor, &cu).len(), nor.num_gates());
    }
}
