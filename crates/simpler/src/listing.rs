//! Human-readable micro-op listings of mapped programs.
//!
//! SIMPLER outputs are dense and painful to debug by eye; the listing
//! format prints one micro-operation per line with its cycle number, the
//! participating cells, and ECC criticality — the in-memory analogue of a
//! disassembly. A parser is provided so listings round-trip (useful for
//! golden-file tests and for hand-editing schedules in experiments).

use crate::mapper::{Program, Step};
use std::fmt::Write as _;

/// Renders a program as a text listing.
///
/// Format, one step per line:
///
/// ```text
/// ; program row_size=16 inputs=2 outputs=c5
///     0: init c2 c3 c4
///     1: nor  c0 c1 -> c2
///     2: nor! c2 c0 -> c3      ; '!' marks an ECC-critical write
/// ```
pub fn write_listing(program: &Program) -> String {
    let mut out = String::new();
    let outputs: Vec<String> = program
        .output_cells
        .iter()
        .map(|c| format!("c{c}"))
        .collect();
    let _ = writeln!(
        out,
        "; program row_size={} inputs={} outputs={}",
        program.row_size,
        program.num_inputs,
        outputs.join(" ")
    );
    for (cycle, step) in program.steps.iter().enumerate() {
        match step {
            Step::Init { cells } => {
                let cells: Vec<String> = cells.iter().map(|c| format!("c{c}")).collect();
                let _ = writeln!(out, "{cycle:>5}: init {}", cells.join(" "));
            }
            Step::Gate {
                inputs,
                output,
                critical,
                ..
            } => {
                let ins: Vec<String> = inputs.iter().map(|c| format!("c{c}")).collect();
                let marker = if *critical { "!" } else { " " };
                let _ = writeln!(
                    out,
                    "{cycle:>5}: nor{marker} {} -> c{output}",
                    ins.join(" ")
                );
            }
        }
    }
    out
}

/// Errors raised while parsing a listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseListingError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseListingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "listing line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseListingError {}

fn parse_cell(token: &str, line: usize) -> Result<usize, ParseListingError> {
    token
        .strip_prefix('c')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseListingError {
            line,
            reason: format!("bad cell token '{token}'"),
        })
}

/// Parses a listing back into a [`Program`]. The `gate` indices of parsed
/// steps are sequential (original netlist indices are not preserved in the
/// text form).
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_listing(text: &str) -> Result<Program, ParseListingError> {
    let mut row_size = 0usize;
    let mut num_inputs = 0usize;
    let mut output_cells = Vec::new();
    let mut steps = Vec::new();
    let mut gate_counter = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("; program ") {
            let mut in_outputs = false;
            for field in header.split_whitespace() {
                if let Some(v) = field.strip_prefix("row_size=") {
                    in_outputs = false;
                    row_size = v.parse().map_err(|_| ParseListingError {
                        line: line_no,
                        reason: "bad row_size".into(),
                    })?;
                } else if let Some(v) = field.strip_prefix("inputs=") {
                    in_outputs = false;
                    num_inputs = v.parse().map_err(|_| ParseListingError {
                        line: line_no,
                        reason: "bad inputs".into(),
                    })?;
                } else if let Some(v) = field.strip_prefix("outputs=") {
                    in_outputs = true;
                    output_cells.push(parse_cell(v, line_no)?);
                } else if in_outputs {
                    output_cells.push(parse_cell(field, line_no)?);
                }
            }
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        // Strip trailing comment.
        let line = line.split(';').next().unwrap_or("").trim();
        let body = match line.split_once(':') {
            Some((_, b)) => b.trim(),
            None => {
                // Output cells continuation tokens from the header line
                // (already consumed) or garbage.
                if let Ok(cell) = parse_cell(line, line_no) {
                    output_cells.push(cell);
                    continue;
                }
                return Err(ParseListingError {
                    line: line_no,
                    reason: format!("expected 'cycle: op', got '{line}'"),
                });
            }
        };
        let mut tokens = body.split_whitespace();
        match tokens.next() {
            Some("init") => {
                let cells = tokens
                    .map(|t| parse_cell(t, line_no))
                    .collect::<Result<Vec<_>, _>>()?;
                steps.push(Step::Init { cells });
            }
            Some(op @ ("nor" | "nor!")) => {
                let toks: Vec<&str> = tokens.collect();
                let arrow =
                    toks.iter()
                        .position(|&t| t == "->")
                        .ok_or_else(|| ParseListingError {
                            line: line_no,
                            reason: "missing '->'".into(),
                        })?;
                let inputs = toks[..arrow]
                    .iter()
                    .map(|t| parse_cell(t, line_no))
                    .collect::<Result<Vec<_>, _>>()?;
                let output = parse_cell(
                    toks.get(arrow + 1).ok_or_else(|| ParseListingError {
                        line: line_no,
                        reason: "missing output cell".into(),
                    })?,
                    line_no,
                )?;
                steps.push(Step::Gate {
                    gate: gate_counter,
                    inputs,
                    output,
                    critical: op == "nor!",
                });
                gate_counter += 1;
            }
            other => {
                return Err(ParseListingError {
                    line: line_no,
                    reason: format!("unknown op {other:?}"),
                })
            }
        }
    }
    let peak_live = row_size; // conservative; the text form loses this
    Ok(Program {
        row_size,
        num_inputs,
        steps,
        output_cells,
        peak_live,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapperConfig};
    use pimecc_netlist::NetlistBuilder;

    fn program() -> Program {
        let mut b = NetlistBuilder::new();
        let x = b.input();
        let y = b.input();
        let g1 = b.xor(x, y);
        let g2 = b.and(g1, x);
        b.output(g2);
        b.output(g1);
        map(&b.finish().to_nor(), &MapperConfig { row_size: 16 }).expect("maps")
    }

    #[test]
    fn listing_mentions_criticals_and_header() {
        let p = program();
        let text = write_listing(&p);
        assert!(text.starts_with("; program row_size=16 inputs=2"));
        assert!(text.contains("nor!"), "critical marker present:\n{text}");
        assert_eq!(text.lines().count(), p.steps.len() + 1);
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let p = program();
        let text = write_listing(&p);
        let q = parse_listing(&text).expect("parses");
        assert_eq!(q.row_size, p.row_size);
        assert_eq!(q.num_inputs, p.num_inputs);
        assert_eq!(q.output_cells, p.output_cells);
        assert_eq!(q.steps.len(), p.steps.len());
        for v in 0..4u32 {
            let inputs: Vec<bool> = (0..2).map(|i| v >> i & 1 != 0).collect();
            assert_eq!(
                q.execute(&inputs).expect("legal"),
                p.execute(&inputs).expect("legal"),
                "v={v}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_criticality() {
        let p = program();
        let q = parse_listing(&write_listing(&p)).expect("parses");
        assert_eq!(q.critical_count(), p.critical_count());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_listing("; program row_size=4 inputs=1 outputs=c0\n 0: frobnicate c1\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err2 =
            parse_listing("; program row_size=4 inputs=1 outputs=c0\n 0: nor c0 c1\n").unwrap_err();
        assert!(err2.reason.contains("->"));
        let err3 = parse_listing("; program row_size=x inputs=1 outputs=c0\n").unwrap_err();
        assert!(err3.reason.contains("row_size"));
    }
}
