//! Property-based tests for the SIMPLER mapper: for *any* random DAG the
//! mapped single-row program must compute exactly what the netlist
//! computes, within the row budget, under strict MAGIC legality.

use pimecc_netlist::{NetlistBuilder, NorNetlist};
use pimecc_simpler::{
    cell_usage, execution_order, map, schedule_with_ecc, EccConfig, MapperConfig,
};
use proptest::prelude::*;

/// Builds a random combinational netlist from a compact recipe: a list of
/// (kind, operand picks) items over the growing node set.
fn random_netlist(num_inputs: usize, recipe: &[(u8, usize, usize, usize)]) -> NorNetlist {
    let mut b = NetlistBuilder::new();
    let mut pool: Vec<_> = (0..num_inputs).map(|_| b.input()).collect();
    for &(kind, x, y, z) in recipe {
        let a = pool[x % pool.len()];
        let c = pool[y % pool.len()];
        let d = pool[z % pool.len()];
        let node = match kind % 7 {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nor(a, c),
            4 => b.not(a),
            5 => b.mux(a, c, d),
            _ => b.maj(a, c, d),
        };
        pool.push(node);
    }
    // Outputs: the last few distinct nodes (they may fold to inputs or
    // constants; pick gate-backed ones if possible, else whatever's last).
    let take = pool.len().min(4);
    let mut outs: Vec<_> = pool[pool.len() - take..].to_vec();
    outs.dedup();
    for o in outs {
        b.output(o);
    }
    b.finish().to_nor()
}

fn recipe_strategy() -> impl Strategy<Value = (usize, Vec<(u8, usize, usize, usize)>)> {
    (2usize..6).prop_flat_map(|inputs| {
        (
            Just(inputs),
            proptest::collection::vec(
                (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
                1..60,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapped_program_computes_the_netlist(
        (inputs, recipe) in recipe_strategy(),
        stimuli in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let nor = random_netlist(inputs, &recipe);
        // Generous row: inputs + all gates would fit with no reuse.
        let row = inputs + nor.num_gates() + 4;
        let program = map(&nor, &MapperConfig { row_size: row }).expect("generous row maps");
        for s in &stimuli {
            let input_bits: Vec<bool> = (0..inputs).map(|i| s >> i & 1 != 0).collect();
            let got = program.execute(&input_bits).expect("strict-mode legal");
            prop_assert_eq!(got, nor.eval(&input_bits));
        }
    }

    #[test]
    fn tight_rows_still_compute_correctly_when_they_map(
        (inputs, recipe) in recipe_strategy(),
        stimulus in any::<u64>(),
    ) {
        let nor = random_netlist(inputs, &recipe);
        let cu = cell_usage(&nor);
        let order = execution_order(&nor, &cu);
        prop_assert_eq!(order.len(), nor.num_gates());
        // Row barely above the heuristic's own estimate: may fail to map
        // (that's allowed), but if it maps it must be correct.
        let estimate = inputs
            + nor.outputs().len()
            + cu.iter().copied().max().unwrap_or(1) as usize
            + 2;
        if let Ok(program) = map(&nor, &MapperConfig { row_size: estimate }) {
            prop_assert!(program.peak_live <= estimate);
            let input_bits: Vec<bool> = (0..inputs).map(|i| stimulus >> i & 1 != 0).collect();
            let got = program.execute(&input_bits).expect("strict-mode legal");
            prop_assert_eq!(got, nor.eval(&input_bits));
        }
    }

    #[test]
    fn ecc_schedule_invariants_hold_for_any_program(
        (inputs, recipe) in recipe_strategy(),
        k in 1usize..9,
    ) {
        let nor = random_netlist(inputs, &recipe);
        let row = inputs + nor.num_gates() + 4;
        let program = map(&nor, &MapperConfig { row_size: row }).expect("maps");
        let cfg = EccConfig { num_pcs: k, ..EccConfig::default() };
        let r = schedule_with_ecc(&program, &cfg);
        // ECC never makes things faster, and the accounting must be sane.
        prop_assert!(r.total_cycles >= r.baseline_cycles);
        prop_assert_eq!(r.critical_ops, program.critical_count());
        prop_assert!(r.transfer_cycles >= 2 * r.critical_ops as u64);
        // More PCs never hurt.
        let more = schedule_with_ecc(
            &program,
            &EccConfig { num_pcs: k + 1, ..EccConfig::default() },
        );
        prop_assert!(more.total_cycles <= r.total_cycles);
    }
}
